#include "dadu/net/wire.hpp"

#include <bit>
#include <cstring>

namespace dadu::net {
namespace {

// ------------------------------------------------------------- encode

void putU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putF64(std::vector<std::uint8_t>& out, double v) {
  putU64(out, std::bit_cast<std::uint64_t>(v));
}

/// Reserve the length prefix, write the payload via `body`, then patch
/// the prefix with the actual payload size.
template <typename BodyFn>
void encodeFrame(std::vector<std::uint8_t>& out, MsgType type,
                 std::uint64_t request_id, BodyFn&& body) {
  const std::size_t length_at = out.size();
  putU32(out, 0);  // patched below
  const std::size_t payload_at = out.size();
  putU8(out, kWireVersion);
  putU8(out, static_cast<std::uint8_t>(type));
  putU64(out, request_id);
  body(out);
  const auto payload_len = static_cast<std::uint32_t>(out.size() - payload_at);
  for (int i = 0; i < 4; ++i)
    out[length_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
}

// ------------------------------------------------------------- decode

/// Bounds-checked little-endian reader over one frame's body.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > len_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > len_) return false;
    v = static_cast<std::uint16_t>(data_[pos_] |
                                   (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > len_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > len_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    pos_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool f64Array(std::vector<double>& out, std::uint32_t n) {
    if (remaining() / 8 < n) return false;
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) f64(out[i]);
    return true;
  }
  bool bytes(std::string& out, std::uint32_t n) {
    if (remaining() < n) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

bool decodeRequestBody(Reader& r, WireRequest& out) {
  std::uint8_t flags = 0;
  std::uint32_t seed_len = 0;
  if (!r.u32(out.spec_id) || !r.u8(flags) || !r.f64(out.target[0]) ||
      !r.f64(out.target[1]) || !r.f64(out.target[2]) ||
      !r.f64(out.deadline_ms) || !r.u32(seed_len) ||
      !r.f64Array(out.seed, seed_len))
    return false;
  out.use_seed_cache = (flags & 0x01u) != 0;
  switch ((flags >> 1) & 0x03u) {
    case 1:
      out.priority = service::Priority::kLow;
      break;
    case 2:
      out.priority = service::Priority::kHigh;
      break;
    default:  // 0 = normal; 3 reserved, decodes as normal
      out.priority = service::Priority::kNormal;
      break;
  }
  return r.remaining() == 0;
}

std::uint8_t encodeFlags(const WireRequest& request) {
  std::uint8_t flags = request.use_seed_cache ? 0x01u : 0x00u;
  switch (request.priority) {
    case service::Priority::kLow:
      flags |= 1u << 1;
      break;
    case service::Priority::kHigh:
      flags |= 2u << 1;
      break;
    case service::Priority::kNormal:
      break;  // 0 on the wire, so v1 encoders stay bit-identical
  }
  return flags;
}

bool decodeResponseBody(Reader& r, WireResponse& out) {
  std::uint8_t cached = 0;
  std::uint32_t theta_len = 0;
  std::uint32_t iterations = 0;
  if (!r.u8(out.status) || !r.u8(out.reject_reason) ||
      !r.u8(out.solver_status) || !r.u8(cached) || !r.u32(iterations) ||
      !r.f64(out.error) || !r.f64(out.queue_ms) || !r.f64(out.solve_ms) ||
      !r.u32(theta_len) || !r.f64Array(out.theta, theta_len))
    return false;
  out.seeded_from_cache = cached != 0;
  out.iterations = static_cast<std::int32_t>(iterations);
  return r.remaining() == 0;
}

bool decodeErrorBody(Reader& r, WireError& out) {
  std::uint16_t code = 0;
  std::uint32_t msg_len = 0;
  if (!r.u16(code) || !r.u32(msg_len) || !r.bytes(out.message, msg_len))
    return false;
  out.code = static_cast<WireErrorCode>(code);
  return r.remaining() == 0;
}

}  // namespace

std::string toString(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kUnsupportedVersion:
      return "unsupported-version";
    case WireErrorCode::kUnknownSpec:
      return "unknown-spec";
    case WireErrorCode::kInternal:
      return "internal";
    case WireErrorCode::kShuttingDown:
      return "shutting-down";
    case WireErrorCode::kBadRequest:
      return "bad-request";
  }
  return "unknown";
}

bool isRetryable(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kShuttingDown:
      return true;  // this server is draining; another (or a restart) serves
    case WireErrorCode::kUnsupportedVersion:
    case WireErrorCode::kUnknownSpec:
    case WireErrorCode::kInternal:
    case WireErrorCode::kBadRequest:
      return false;
  }
  return false;  // unknown codes: fail fast rather than retry blindly
}

bool isRetryable(service::RejectReason reason) {
  switch (reason) {
    case service::RejectReason::kQueueFull:
    case service::RejectReason::kOverloaded:
    case service::RejectReason::kShutdown:
      return true;  // transient server state — back off and retry
    case service::RejectReason::kNone:
    case service::RejectReason::kInternalError:
      return false;
  }
  return false;
}

void encodeRequest(const WireRequest& request, std::vector<std::uint8_t>& out) {
  encodeFrame(out, MsgType::kRequest, request.id,
              [&](std::vector<std::uint8_t>& o) {
                putU32(o, request.spec_id);
                putU8(o, encodeFlags(request));
                for (double t : request.target) putF64(o, t);
                putF64(o, request.deadline_ms);
                putU32(o, static_cast<std::uint32_t>(request.seed.size()));
                for (double s : request.seed) putF64(o, s);
              });
}

void encodeResponse(const WireResponse& response,
                    std::vector<std::uint8_t>& out) {
  encodeFrame(out, MsgType::kResponse, response.id,
              [&](std::vector<std::uint8_t>& o) {
                putU8(o, response.status);
                putU8(o, response.reject_reason);
                putU8(o, response.solver_status);
                putU8(o, response.seeded_from_cache ? 1 : 0);
                putU32(o, static_cast<std::uint32_t>(response.iterations));
                putF64(o, response.error);
                putF64(o, response.queue_ms);
                putF64(o, response.solve_ms);
                putU32(o, static_cast<std::uint32_t>(response.theta.size()));
                for (double t : response.theta) putF64(o, t);
              });
}

void encodeError(const WireError& error, std::vector<std::uint8_t>& out) {
  encodeFrame(out, MsgType::kError, error.id,
              [&](std::vector<std::uint8_t>& o) {
                putU16(o, static_cast<std::uint16_t>(error.code));
                putU32(o, static_cast<std::uint32_t>(error.message.size()));
                o.insert(o.end(), error.message.begin(), error.message.end());
              });
}

DecodeStatus decodeFrame(const std::uint8_t* data, std::size_t len,
                         std::size_t max_frame_bytes, DecodedFrame& out) {
  if (len < kLengthBytes) return DecodeStatus::kNeedMore;
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i)
    payload_len |= std::uint32_t{data[static_cast<std::size_t>(i)]} << (8 * i);

  // Judge the declared length before waiting on bytes: an attacker (or
  // corrupted stream) claiming a huge frame must not make us buffer it.
  if (payload_len < kPayloadHeaderBytes || payload_len > max_frame_bytes)
    return DecodeStatus::kMalformed;
  if (len < kLengthBytes + payload_len) return DecodeStatus::kNeedMore;

  const std::uint8_t* payload = data + kLengthBytes;
  out.consumed = kLengthBytes + payload_len;
  out.version = payload[0];
  const std::uint8_t raw_type = payload[1];
  out.request_id = 0;
  for (int i = 0; i < 8; ++i)
    out.request_id |= std::uint64_t{payload[2 + static_cast<std::size_t>(i)]}
                      << (8 * i);

  if (out.version != kWireVersion) return DecodeStatus::kUnsupportedVersion;
  if (raw_type < static_cast<std::uint8_t>(MsgType::kRequest) ||
      raw_type > static_cast<std::uint8_t>(MsgType::kError))
    return DecodeStatus::kMalformed;
  out.type = static_cast<MsgType>(raw_type);

  Reader body(payload + kPayloadHeaderBytes,
              payload_len - kPayloadHeaderBytes);
  switch (out.type) {
    case MsgType::kRequest:
      out.request = WireRequest{};
      out.request.id = out.request_id;
      if (!decodeRequestBody(body, out.request))
        return DecodeStatus::kMalformed;
      return DecodeStatus::kOk;
    case MsgType::kResponse:
      out.response = WireResponse{};
      out.response.id = out.request_id;
      if (!decodeResponseBody(body, out.response))
        return DecodeStatus::kMalformed;
      return DecodeStatus::kOk;
    case MsgType::kError:
      out.error = WireError{};
      out.error.id = out.request_id;
      if (!decodeErrorBody(body, out.error)) return DecodeStatus::kMalformed;
      return DecodeStatus::kOk;
  }
  return DecodeStatus::kMalformed;
}

service::Request toServiceRequest(const WireRequest& request) {
  service::Request out;
  out.target = {request.target[0], request.target[1], request.target[2]};
  if (!request.seed.empty()) out.seed = linalg::VecX(request.seed);
  out.deadline_ms = request.deadline_ms;
  out.use_seed_cache = request.use_seed_cache;
  out.priority = request.priority;
  return out;
}

WireResponse toWireResponse(std::uint64_t id,
                            const service::Response& response) {
  WireResponse out;
  out.id = id;
  out.status = static_cast<std::uint8_t>(response.status);
  out.reject_reason = static_cast<std::uint8_t>(response.reject_reason);
  out.solver_status = static_cast<std::uint8_t>(response.result.status);
  out.seeded_from_cache = response.seeded_from_cache;
  out.iterations = response.result.iterations;
  out.error = response.result.error;
  out.queue_ms = response.queue_ms;
  out.solve_ms = response.solve_ms;
  out.theta.assign(response.result.theta.begin(), response.result.theta.end());
  return out;
}

service::Response toServiceResponse(const WireResponse& response) {
  service::Response out;
  out.status = static_cast<service::ResponseStatus>(response.status);
  out.reject_reason =
      static_cast<service::RejectReason>(response.reject_reason);
  out.result.status = static_cast<ik::Status>(response.solver_status);
  out.result.iterations = response.iterations;
  out.result.error = response.error;
  out.result.theta = linalg::VecX(response.theta);
  out.queue_ms = response.queue_ms;
  out.solve_ms = response.solve_ms;
  out.seeded_from_cache = response.seeded_from_cache;
  return out;
}

}  // namespace dadu::net
