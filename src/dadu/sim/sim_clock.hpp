// Virtual time source for the deterministic simulation harness.
//
// A SimClock is a number, not a thread of execution: now() returns the
// current virtual instant and nothing moves it except an explicit
// advance — by the SimExecutor stepping to the next due task, or by a
// component "sleeping".  sleepFor() *is* the advance: under the
// cooperative single-threaded sim there is exactly one runnable task,
// so a task that sleeps simply moves the universe forward — a modeled
// 0.4 ms solve or an injected 50 ms chaos delay costs nothing in wall
// time.  That is the trick that lets a million simulated requests run
// in seconds.
//
// Single-threaded by design (like everything in dadu::sim): no atomics,
// no locks, and time never goes backwards.
#pragma once

#include <chrono>

#include "dadu/platform/clock.hpp"

namespace dadu::sim {

class SimClock final : public platform::Clock {
 public:
  /// Virtual time starts one hour past the epoch, not *at* it: the
  /// solver layer treats the epoch time_point as the "no deadline"
  /// sentinel, and starting elsewhere keeps any real instant the sim
  /// ever computes unambiguous.
  static constexpr duration kStart = std::chrono::hours(1);

  time_point now() const override { return now_; }

  /// Advance virtual time by `d` (negative or zero: no-op — time never
  /// rewinds).  Const because Clock::sleepFor is const for the real
  /// clock's sake; the mutation is the whole point here.
  void sleepFor(duration d) const override {
    if (d.count() > 0) now_ += d;
  }

  void advance(duration d) { sleepFor(d); }

  /// Advance to an absolute instant; a `t` in the past is a no-op.
  void advanceTo(time_point t) {
    if (t > now_) now_ = t;
  }

  /// Virtual time elapsed since construction.
  duration elapsed() const { return now_ - (time_point{} + kStart); }

 private:
  mutable time_point now_ = time_point{} + kStart;
};

}  // namespace dadu::sim
