// SimTransport: in-memory byte pipes standing in for TCP sockets.
//
// A SimConnection is one duplex client<->server byte stream.  send()
// schedules the bytes for delivery on the peer side after a modeled
// one-way latency (seeded jitter, FIFO-preserving: a later send never
// overtakes an earlier one, exactly like a TCP stream).  Delivery is a
// SimExecutor task, so transport interleaves deterministically with
// everything else under the run's seed.
//
// What is and is not simulated: framing, ordering, backpressure-free
// delivery and connection teardown are; epoll, partial reads/writes
// and kernel socket buffers are NOT — those belong to dadu_net's real
// reactor, which keeps its own tests.  The sim exercises the protocol
// and serving semantics *above* the socket, not the syscalls.
//
// Fault points (consulted per send when a plan is armed, reusing the
// dadu_net point names so existing FaultPlans port over):
//   kDrop     connection dies (both sides see onClose)
//   kCorrupt  payload bytes flipped via the rule's deterministic stream
//   kDelay    extra one-way latency for this send
//   kTruncate the send is cut to max_bytes and the connection dies (a
//             peer that vanished mid-write; in-flight bytes are lost)
//   kEintr    meaningless without syscalls; ignored
//
// Handles are shared_ptr-backed: delivery tasks already queued when a
// connection closes or the handle dies resolve against the shared
// state and become no-ops, never dangling pointers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dadu/sim/sim_executor.hpp"

namespace dadu::sim {

/// Which side of a connection is acting.
enum class Side : std::size_t { kClient = 0, kServer = 1 };

struct LinkConfig {
  double latency_us = 50.0;  ///< mean one-way delivery latency
  double jitter_us = 20.0;   ///< uniform +/- around the mean
  /// Fault point consulted when the CLIENT side sends (empty = none).
  const char* client_fault_point = "net.client.write";
  /// Fault point consulted when the SERVER side sends.
  const char* server_fault_point = "net.server.write";
};

class SimConnection {
 public:
  using ReceiveHandler =
      std::function<void(const std::uint8_t* data, std::size_t len)>;
  using CloseHandler = std::function<void()>;

  /// `executor` must outlive every delivery (i.e. the whole run).
  SimConnection(SimExecutor& executor, LinkConfig link, std::uint64_t seed);

  /// Install the handler invoked (as an executor task) when bytes
  /// reach `side`.  Replacing a handler affects undelivered sends too.
  void onReceive(Side side, ReceiveHandler handler);
  /// Invoked exactly once on each side when the connection dies.
  void onClose(Side side, CloseHandler handler);

  /// Queue `len` bytes from `side` toward its peer.  Returns false if
  /// the connection is closed or the send was consumed by a fault
  /// (kDrop/kTruncate also kill the connection).
  bool send(Side side, const std::uint8_t* data, std::size_t len);

  /// Tear the connection down: both sides' close handlers run (as
  /// executor tasks), in-flight deliveries are discarded.  Idempotent.
  void close();

  /// Close once every delivery queued so far has landed — the sim's
  /// spelling of the reactor's close_after_flush (send an error frame,
  /// then hang up).  Sends after this call are still accepted until
  /// the deferred close fires.
  void closeAfterFlush();

  bool open() const;
  std::uint64_t bytesSent(Side side) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace dadu::sim
