// Seeded deterministic task scheduler: the sim's only "thread".
//
// Every deferred action in a simulation — a client's next arrival, a
// worker's dispatch step, a linger-window timer, a frame delivery — is
// a task in one priority queue keyed (due time, seeded jitter,
// sequence number).  runOne() pops the earliest task, advances the
// SimClock to its due instant, and runs it; drain() repeats until the
// queue is empty.  Virtual time therefore moves in discrete hops from
// event to event, which is what makes simulating hours of traffic take
// seconds of wall time.
//
// Determinism and the seed: the (due, jitter, seq) key is a total
// order, so a given seed always replays the same interleaving —
// byte-identical traces.  The jitter term is a splitmix64 draw taken
// at post() time; tasks due at the *same* virtual instant (concurrent
// events, racing workers) are ordered by it, so different seeds
// genuinely explore different interleavings instead of degenerating to
// FIFO.  seq breaks the (astronomically unlikely) jitter tie and keeps
// the order total.
//
// Single-threaded by contract: post/postAt/runOne must all happen on
// one thread.  Tasks may post further tasks freely (that is how
// cooperative components reschedule themselves).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "dadu/platform/executor.hpp"
#include "dadu/sim/sim_clock.hpp"

namespace dadu::sim {

class SimExecutor final : public platform::Executor {
 public:
  /// `clock` must outlive the executor.  `seed` picks the interleaving
  /// among same-instant tasks (and nothing else).
  explicit SimExecutor(SimClock& clock, std::uint64_t seed = 0);

  void post(std::function<void()> task) override;
  void postAt(platform::Clock::time_point due,
              std::function<void()> task) override;
  const platform::Clock& clock() const override { return clock_; }
  SimClock& simClock() { return clock_; }

  /// Pop the earliest task, advance the clock to its due instant, run
  /// it.  False when the queue is empty (clock untouched).
  bool runOne();

  /// Run tasks until none remain or `max_tasks` have run (a runaway
  /// backstop, not a scheduling knob).  Returns the number executed.
  std::size_t drain(std::size_t max_tasks = SIZE_MAX);

  /// Run tasks while they are due at or before `until`; later tasks
  /// stay queued and the clock advances to exactly `until`.  Returns
  /// the number executed.
  std::size_t runUntil(platform::Clock::time_point until);

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t seed() const { return seed_; }

 private:
  struct Entry {
    platform::Clock::time_point due;
    std::uint64_t jitter = 0;
    std::uint64_t seq = 0;
    std::function<void()> task;
  };
  /// Max-heap comparator inverted so the heap front is the min key.
  static bool later(const Entry& a, const Entry& b);

  std::uint64_t nextJitter();

  SimClock& clock_;
  std::uint64_t seed_ = 0;
  std::uint64_t rng_ = 0;  ///< splitmix64 state
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace dadu::sim
