#include "dadu/sim/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace dadu::sim {

void Trace::record(std::uint64_t t_us, const char* format, ...) {
  char line[256];
  int n = std::snprintf(line, sizeof line, "%" PRIu64 " ", t_us);
  va_list args;
  va_start(args, format);
  const int body = std::vsnprintf(line + n, sizeof line - n - 1,
                                  format, args);
  va_end(args);
  if (body > 0)
    n += std::min(body, static_cast<int>(sizeof line) - n - 2);
  line[n++] = '\n';
  line[n] = '\0';

  for (int i = 0; i < n; ++i) {
    digest_ ^= static_cast<std::uint8_t>(line[i]);
    digest_ *= 0x100000001b3ull;
  }
  ++events_;
  if (retained_.size() < keep_)
    retained_.emplace_back(line, static_cast<std::size_t>(n));
}

void Trace::writeTo(std::ostream& out) const {
  for (const std::string& line : retained_) out << line;
  char trailer[96];
  std::snprintf(trailer, sizeof trailer,
                "# events=%" PRIu64 " digest=%016" PRIx64 "\n", events_,
                digest_);
  out << trailer;
}

}  // namespace dadu::sim
