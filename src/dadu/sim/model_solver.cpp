#include "dadu/sim/model_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dadu/fault/fault.hpp"

namespace dadu::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double nextUnit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ModelSolver::ModelSolver(kin::Chain chain, ModelSolverConfig config)
    : chain_(std::move(chain)),
      config_(config),
      rng_(config.seed ^ 0xa0761d6478bd642full) {
  options_.max_iterations = config_.max_iterations;
}

ik::SolveResult ModelSolver::solve(const linalg::Vec3& target,
                                   const linalg::VecX& seed) {
  // Same seed contract as the real solvers: empty = start from the
  // zero configuration, anything else must match the chain's DOF.
  if (seed.size() != 0 && seed.size() != chain_.dof())
    throw std::invalid_argument("seed size does not match chain DOF");
  if (!std::isfinite(target.x) || !std::isfinite(target.y) ||
      !std::isfinite(target.z))
    throw std::invalid_argument("non-finite target");

  ++solves_;
  // Same contract as the real solvers' iteration head: kError aborts
  // the solve (captured per lane by solveMany), kDelay charges time.
  fault::inject("solver.iterate", clock());

  // Outcome and cost from this solver's private stream — the draws are
  // taken before the deadline check so a timed-out solve consumes the
  // same amount of randomness as a completed one (replay stability).
  const double u_converge = nextUnit(rng_);
  const double u_iters = nextUnit(rng_);
  const double u_tail = nextUnit(rng_);

  const bool converges = u_converge < config_.converge_probability;
  int iterations;
  if (converges) {
    const double draw =
        1.0 - config_.typical_iterations * std::log(1.0 - u_iters);
    iterations = std::clamp(static_cast<int>(draw), 1,
                            std::max(1, config_.max_iterations));
  } else {
    iterations = std::max(1, config_.max_iterations);
  }
  double cost_ms = iterations * config_.iteration_ms;
  if (u_tail < config_.tail_probability) cost_ms += config_.tail_ms;

  ik::SolveResult result;
  result.theta =
      seed.size() != 0 ? seed : linalg::VecX(chain_.dof());

  // The watchdog, modeled: stop *at* the deadline, report best-so-far.
  const bool bounded =
      deadline_ != std::chrono::steady_clock::time_point{};
  const auto now = clockNow();
  double charged_ms = cost_ms;
  if (bounded) {
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(deadline_ - now).count();
    if (remaining_ms < cost_ms) {
      charged_ms = std::max(remaining_ms, 0.0);
      const double fraction = cost_ms <= 0.0 ? 0.0 : charged_ms / cost_ms;
      result.status = ik::Status::kTimedOut;
      result.iterations =
          std::max(1, static_cast<int>(iterations * fraction));
      result.error = options_.accuracy * 10.0;
      result.fk_evaluations = result.iterations * 2;
      result.speculation_load = result.iterations;
      if (const platform::Clock* c = clock())
        c->sleepFor(std::chrono::duration_cast<platform::Clock::duration>(
            std::chrono::duration<double, std::milli>(charged_ms)));
      return result;
    }
  }

  result.status =
      converges ? ik::Status::kConverged : ik::Status::kMaxIterations;
  result.iterations = iterations;
  result.error = converges ? options_.accuracy * (0.1 + 0.8 * u_iters)
                           : options_.accuracy * (2.0 + 8.0 * u_iters);
  result.fk_evaluations = iterations * 2;
  result.speculation_load = iterations;
  if (const platform::Clock* c = clock())
    c->sleepFor(std::chrono::duration_cast<platform::Clock::duration>(
        std::chrono::duration<double, std::milli>(charged_ms)));
  return result;
}

}  // namespace dadu::sim
