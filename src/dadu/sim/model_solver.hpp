// ModelSolver: a statistical stand-in for a real IK solver.
//
// The simulation harness wants to push millions of requests through
// the *serving* stack — admission, batching, deadlines, the breaker,
// the wire protocol — and none of that cares what the joint angles
// are.  A real Quick-IK solve costs hundreds of microseconds of FK
// math; at a million requests that is minutes of wall time spent
// computing answers nobody reads.  ModelSolver replaces the math with
// a seeded cost model: each solve draws an iteration count and outcome
// from its own splitmix64 stream and *charges the cost to the solver's
// Clock* via sleepFor.  Under a SimClock that advances virtual time
// instantly — so solve_ms, queue_ms, deadline expiry and watchdog
// timeouts all behave exactly as if the solver had really burned the
// time, for free.
//
// Semantics mirrored from the real solvers so the serving layer cannot
// tell the difference:
//   - std::invalid_argument on seed-size mismatch / non-finite target
//     (exercises the internal-error path);
//   - the "solver.iterate" fault point fires once per solve (kDelay
//     charges virtual time, kError throws mid-solve);
//   - setDeadline() is honoured: a modeled solve that would overrun
//     its deadline stops *at* the deadline with Status::kTimedOut and
//     pro-rata iterations — the cooperative watchdog, modeled;
//   - solveMany() is inherited from the base sequential loop, so
//     per-lane deadlines and per-lane error capture work unchanged.
//
// Determinism: outcomes depend only on the config seed and the call
// order, and the sim's call order is fixed by the SimExecutor seed.
#pragma once

#include <cstdint>

#include "dadu/kinematics/chain.hpp"
#include "dadu/solvers/ik_solver.hpp"

namespace dadu::sim {

struct ModelSolverConfig {
  std::uint64_t seed = 1;
  /// Virtual cost charged per modeled iteration.
  double iteration_ms = 0.01;
  /// Mean of the (geometric-ish) iteration draw for converging solves.
  double typical_iterations = 30.0;
  /// Chance a solve converges (else it runs the full iteration budget
  /// and reports kMaxIterations).
  double converge_probability = 0.97;
  /// Chance of a tail solve: `tail_ms` extra virtual cost on top of
  /// the iteration charge (the runaway the watchdog exists for).
  double tail_probability = 0.005;
  double tail_ms = 20.0;
  /// Iteration budget reported via options() and used for
  /// non-converging solves.
  int max_iterations = 200;
};

class ModelSolver final : public ik::IkSolver {
 public:
  explicit ModelSolver(kin::Chain chain, ModelSolverConfig config = {});

  ik::SolveResult solve(const linalg::Vec3& target,
                        const linalg::VecX& seed) override;
  std::string name() const override { return "model"; }
  void setDeadline(std::chrono::steady_clock::time_point deadline) override {
    deadline_ = deadline;
  }
  const kin::Chain& chain() const override { return chain_; }
  const ik::SolveOptions& options() const override { return options_; }

  std::uint64_t solves() const { return solves_; }

 private:
  kin::Chain chain_;
  ModelSolverConfig config_;
  ik::SolveOptions options_;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t rng_ = 0;
  std::uint64_t solves_ = 0;
};

}  // namespace dadu::sim
