#include "dadu/sim/transport.hpp"

#include <algorithm>
#include <utility>

#include "dadu/fault/fault.hpp"

namespace dadu::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double nextUnit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

constexpr std::size_t index(Side side) {
  return static_cast<std::size_t>(side);
}
constexpr std::size_t peer(Side side) { return 1 - index(side); }

}  // namespace

struct SimConnection::State {
  SimExecutor* executor = nullptr;
  LinkConfig link;
  std::uint64_t rng = 0;
  bool open = true;
  /// Last scheduled delivery instant per direction (sender-indexed):
  /// the FIFO floor that keeps the stream in order under jittered
  /// latency.
  platform::Clock::time_point last_delivery[2] = {};
  std::uint64_t bytes_sent[2] = {0, 0};
  ReceiveHandler on_receive[2];
  CloseHandler on_close[2];

  void shutdown() {
    if (!open) return;
    open = false;
    for (std::size_t s = 0; s < 2; ++s) {
      if (!on_close[s]) continue;
      CloseHandler handler = std::move(on_close[s]);
      on_close[s] = nullptr;
      executor->post(std::move(handler));
    }
  }
};

SimConnection::SimConnection(SimExecutor& executor, LinkConfig link,
                             std::uint64_t seed)
    : state_(std::make_shared<State>()) {
  state_->executor = &executor;
  state_->link = link;
  state_->rng = seed ^ 0xe7037ed1a0b428dbull;
}

void SimConnection::onReceive(Side side, ReceiveHandler handler) {
  state_->on_receive[index(side)] = std::move(handler);
}

void SimConnection::onClose(Side side, CloseHandler handler) {
  state_->on_close[index(side)] = std::move(handler);
}

bool SimConnection::send(Side side, const std::uint8_t* data,
                         std::size_t len) {
  State& st = *state_;
  if (!st.open || len == 0) return false;

  std::vector<std::uint8_t> payload(data, data + len);
  double extra_us = 0.0;
  bool kill_after = false;

  const char* point = side == Side::kClient ? st.link.client_fault_point
                                            : st.link.server_fault_point;
  if (point != nullptr && point[0] != '\0') {
    const fault::Decision d = fault::decide(point);
    switch (d.action) {
      case fault::Action::kDrop:
        st.shutdown();
        return false;
      case fault::Action::kCorrupt:
        fault::corruptBytes(payload.data(), payload.size(), d.corrupt_seed);
        break;
      case fault::Action::kDelay:
        extra_us = d.delay_ms * 1000.0;
        break;
      case fault::Action::kTruncate:
        payload.resize(std::min(payload.size(), d.max_bytes));
        kill_after = true;
        break;
      default:
        break;  // kNone / kEintr / kError: deliver normally
    }
  }

  const std::size_t from = index(side);
  const std::size_t to = peer(side);
  const double latency_us =
      std::max(0.0, st.link.latency_us +
                        st.link.jitter_us * (2.0 * nextUnit(st.rng) - 1.0) +
                        extra_us);
  auto due = st.executor->clock().now() +
             std::chrono::duration_cast<platform::Clock::duration>(
                 std::chrono::duration<double, std::micro>(latency_us));
  // FIFO: a later send never overtakes an earlier one.
  due = std::max(due, st.last_delivery[from]);
  st.last_delivery[from] = due;
  st.bytes_sent[from] += payload.size();

  std::shared_ptr<State> state = state_;
  st.executor->postAt(due, [state, to, payload = std::move(payload)] {
    if (!state->open) return;  // connection died while in flight
    if (state->on_receive[to])
      state->on_receive[to](payload.data(), payload.size());
  });

  if (kill_after) st.shutdown();
  return !kill_after;
}

void SimConnection::close() { state_->shutdown(); }

void SimConnection::closeAfterFlush() {
  State& st = *state_;
  if (!st.open) return;
  // One microsecond past the last scheduled delivery: strictly later,
  // so same-instant jitter ordering cannot run the close first.
  auto due = std::max(st.last_delivery[0], st.last_delivery[1]);
  due = std::max(due, st.executor->clock().now()) +
        std::chrono::microseconds(1);
  std::shared_ptr<State> state = state_;
  st.executor->postAt(due, [state] { state->shutdown(); });
}

bool SimConnection::open() const { return state_->open; }

std::uint64_t SimConnection::bytesSent(Side side) const {
  return state_->bytes_sent[index(side)];
}

}  // namespace dadu::sim
