// SimServer: the IkServer's serving semantics on simulated transport.
//
// One cooperative object standing where the epoll reactor stands in
// production: it accepts SimConnections, reassembles frames from the
// byte stream with the SAME wire codec (dadu/net/wire.hpp) the real
// server uses, applies the same validation ladder, and dispatches to
// the same IkService.  Response completions arrive as executor tasks
// (no CompletionSink/eventfd hop — the sim is single-threaded) and are
// serialized back through the connection.
//
// Validation mirrors IkServer::parseFrames/handleRequest line for
// line, so protocol behaviour proven here transfers:
//   malformed frame        -> close that connection, count it
//   wrong wire version     -> kUnsupportedVersion error, then close
//   non-request frame      -> protocol close
//   draining               -> kShuttingDown error
//   unknown spec id        -> kUnknownSpec error
//   bad content            -> kBadRequest error (non-finite target /
//                             negative deadline, pre-dispatch)
//
// Conservation contract (asserted by Scenario): every dispatched
// request completes exactly once; completed == responses_sent +
// orphaned (a completion whose connection died is orphaned, mirroring
// dadu_net_orphaned_completions).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "dadu/net/buffer.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/sim/sim_executor.hpp"
#include "dadu/sim/trace.hpp"
#include "dadu/sim/transport.hpp"

namespace dadu::registry {
class SpecRouter;
}

namespace dadu::sim {

struct SimServerConfig {
  /// Single-spec mode only; router mode routes by the registry.
  std::uint32_t robot_spec_id = 0;
  std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
};

struct SimServerStats {
  std::uint64_t connections = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t unknown_spec = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t orphaned = 0;  ///< completions whose connection died
};

class SimServer {
 public:
  /// Single-spec mode.  `service` must run on `executor`
  /// (ServiceConfig::executor) so completions arrive cooperatively.
  /// `trace` is optional.
  SimServer(service::IkService& service, SimExecutor& executor,
            SimServerConfig config = {}, Trace* trace = nullptr);

  /// Multi-spec mode: route by wire spec_id through `router`, exactly
  /// like the production IkServer's router constructor.  Every lane
  /// service must run on `executor`; unknown spec ids answer
  /// kUnknownSpec (counted in stats().unknown_spec) and the connection
  /// survives.
  SimServer(registry::SpecRouter& router, SimExecutor& executor,
            SimServerConfig config = {}, Trace* trace = nullptr);

  /// Attach the server side of `conn` and start serving it.
  void accept(std::shared_ptr<SimConnection> conn);

  /// Refuse new dispatches with kShuttingDown (existing in-flight work
  /// still completes and flushes) — the drain phase of a shutdown.
  void beginDrain() { draining_ = true; }

  const SimServerStats& stats() const { return stats_; }

 private:
  struct ServerConn {
    std::uint64_t id = 0;
    std::shared_ptr<SimConnection> conn;
    net::ByteBuffer in;
    bool open = true;
  };

  void onBytes(const std::shared_ptr<ServerConn>& sc,
               const std::uint8_t* data, std::size_t len);
  void parseFrames(const std::shared_ptr<ServerConn>& sc);
  void handleRequest(const std::shared_ptr<ServerConn>& sc,
                     const net::WireRequest& request);
  void sendError(ServerConn& sc, std::uint64_t request_id,
                 net::WireErrorCode code, const char* message);
  void closeConn(ServerConn& sc);
  std::uint64_t nowUs() const;

  /// Exactly one of these is set (single-spec vs router mode).
  service::IkService* service_ = nullptr;
  registry::SpecRouter* router_ = nullptr;
  SimExecutor& executor_;
  SimServerConfig config_;
  Trace* trace_ = nullptr;
  bool draining_ = false;
  std::uint64_t next_conn_id_ = 1;
  SimServerStats stats_;
  std::vector<std::uint8_t> encode_scratch_;
};

}  // namespace dadu::sim
