#include "dadu/sim/sim_server.hpp"

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "dadu/registry/spec_router.hpp"

namespace dadu::sim {

SimServer::SimServer(service::IkService& service, SimExecutor& executor,
                     SimServerConfig config, Trace* trace)
    : service_(&service),
      executor_(executor),
      config_(config),
      trace_(trace) {}

SimServer::SimServer(registry::SpecRouter& router, SimExecutor& executor,
                     SimServerConfig config, Trace* trace)
    : router_(&router),
      executor_(executor),
      config_(config),
      trace_(trace) {}

std::uint64_t SimServer::nowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          executor_.simClock().elapsed())
          .count());
}

void SimServer::accept(std::shared_ptr<SimConnection> conn) {
  auto sc = std::make_shared<ServerConn>();
  sc->id = next_conn_id_++;
  sc->conn = std::move(conn);
  ++stats_.connections;
  SimServer* self = this;
  sc->conn->onReceive(Side::kServer,
                      [self, sc](const std::uint8_t* data, std::size_t len) {
                        self->onBytes(sc, data, len);
                      });
  sc->conn->onClose(Side::kServer, [self, sc] {
    if (!sc->open) return;
    sc->open = false;
    ++self->stats_.closed;
    if (self->trace_)
      self->trace_->record(self->nowUs(), "srv close conn=%llu",
                           static_cast<unsigned long long>(sc->id));
  });
}

void SimServer::onBytes(const std::shared_ptr<ServerConn>& sc,
                        const std::uint8_t* data, std::size_t len) {
  if (!sc->open) return;
  sc->in.append(data, len);
  parseFrames(sc);
}

void SimServer::parseFrames(const std::shared_ptr<ServerConn>& sc) {
  // Mirror of IkServer::parseFrames: one frame at a time off the
  // stream, each verdict identical to the real reactor's.
  while (sc->open && !sc->in.empty()) {
    net::DecodedFrame frame;
    const net::DecodeStatus status = net::decodeFrame(
        sc->in.data(), sc->in.size(), config_.max_frame_bytes, frame);
    switch (status) {
      case net::DecodeStatus::kNeedMore:
        return;
      case net::DecodeStatus::kMalformed:
        ++stats_.malformed_frames;
        closeConn(*sc);
        return;
      case net::DecodeStatus::kUnsupportedVersion:
        ++stats_.malformed_frames;
        sendError(*sc, frame.request_id,
                  net::WireErrorCode::kUnsupportedVersion,
                  "server speaks wire version 1");
        sc->conn->closeAfterFlush();  // error frame lands, then hang up
        return;
      case net::DecodeStatus::kOk:
        break;
    }
    sc->in.consume(frame.consumed);
    ++stats_.frames_received;
    if (frame.type != net::MsgType::kRequest) {
      ++stats_.malformed_frames;
      closeConn(*sc);
      return;
    }
    handleRequest(sc, frame.request);
  }
}

void SimServer::handleRequest(const std::shared_ptr<ServerConn>& sc,
                              const net::WireRequest& request) {
  if (draining_) {
    ++stats_.shed_draining;
    sendError(*sc, request.id, net::WireErrorCode::kShuttingDown,
              "server is draining");
    return;
  }
  service::IkService* target = service_;
  if (router_) {
    target = router_->serviceFor(request.spec_id);
    if (!target) {
      ++stats_.unknown_spec;
      sendError(*sc, request.id, net::WireErrorCode::kUnknownSpec,
                "unknown robot spec");
      return;
    }
  } else if (request.spec_id != config_.robot_spec_id) {
    ++stats_.unknown_spec;
    sendError(*sc, request.id, net::WireErrorCode::kUnknownSpec,
              "unknown robot spec");
    return;
  }
  if (!std::isfinite(request.target[0]) || !std::isfinite(request.target[1]) ||
      !std::isfinite(request.target[2]) ||
      !std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0) {
    ++stats_.bad_requests;
    sendError(*sc, request.id, net::WireErrorCode::kBadRequest,
              "non-finite target or bad deadline");
    return;
  }

  ++stats_.dispatched;
  const std::uint64_t request_id = request.id;
  std::shared_ptr<ServerConn> conn = sc;
  SimServer* self = this;
  target->submit(net::toServiceRequest(request),
                 [self, conn, request_id](service::Response response) {
                   ++self->stats_.completed;
                   if (!conn->open || !conn->conn->open()) {
                     ++self->stats_.orphaned;
                     return;
                   }
                   const net::WireResponse wire =
                       net::toWireResponse(request_id, response);
                   self->encode_scratch_.clear();
                   net::encodeResponse(wire, self->encode_scratch_);
                   if (conn->conn->send(Side::kServer,
                                        self->encode_scratch_.data(),
                                        self->encode_scratch_.size()))
                     ++self->stats_.responses_sent;
                   else
                     ++self->stats_.orphaned;
                 });
}

void SimServer::sendError(ServerConn& sc, std::uint64_t request_id,
                          net::WireErrorCode code, const char* message) {
  if (!sc.open || !sc.conn->open()) return;
  net::WireError error;
  error.id = request_id;
  error.code = code;
  error.message = message;
  encode_scratch_.clear();
  net::encodeError(error, encode_scratch_);
  if (sc.conn->send(Side::kServer, encode_scratch_.data(),
                    encode_scratch_.size()))
    ++stats_.errors_sent;
}

void SimServer::closeConn(ServerConn& sc) {
  if (!sc.open) return;
  // close() fires this side's onClose handler (as a task), which does
  // the bookkeeping; flip open here so frames already buffered stop
  // parsing immediately.
  sc.conn->close();
}

}  // namespace dadu::sim
