// Scenario: one whole-stack simulation run under one seed.
//
// A scenario stands up the full serving pipeline — N simulated clients
// -> SimTransport byte pipes -> SimServer (real wire codec, real
// validation) -> IkService in cooperative executor mode (real
// admission control, deadlines, breaker, batching) -> ModelSolver —
// on a SimClock + SimExecutor, drives a workload through it, and
// checks the conservation invariants the production stack promises:
//
//   exactly-one-outcome   every transmitted request ends in exactly
//                         one of: response frame, error frame, or its
//                         connection died with it outstanding;
//   counter conservation  ServiceStats::accounted() == submitted, and
//                         server dispatched == completed ==
//                         responses_sent + orphaned.
//
// Everything — arrival times, targets, solver outcomes, fault
// decisions, transport jitter, task interleaving — derives from
// ScenarioConfig::seed, so the same seed replays byte-identically
// (Trace::digest is the witness) and a chaos failure reproduces from
// nothing but its logged seed.  See docs/RUNBOOK.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dadu/fault/fault.hpp"
#include "dadu/service/circuit_breaker.hpp"
#include "dadu/service/service_stats.hpp"
#include "dadu/sim/model_solver.hpp"
#include "dadu/sim/sim_server.hpp"
#include "dadu/sim/trace.hpp"

namespace dadu::sim {

struct ScenarioConfig {
  std::string name = "baseline";
  std::uint64_t seed = 1;
  std::size_t requests = 5000;  ///< total, split across clients
  std::size_t clients = 8;
  std::size_t workers = 4;
  std::size_t dof = 8;  ///< serpentine chain handed to the ModelSolvers

  /// Robot specs hosted by the one simulated server.  Spec s gets a
  /// serpentine chain of dof + 2*s joints behind its own service lane
  /// (registry::SpecRouter), so fused batches stay spec-pure by
  /// construction.  1 = the classic single-spec stack (no router in
  /// the path, byte-identical to historical runs).
  std::size_t specs = 1;
  /// Fraction of requests stamped with an unregistered spec id.  The
  /// server answers each with kUnknownSpec, the connection survives,
  /// and the reply counts as a wire_error outcome.
  double wrong_spec_fraction = 0.0;

  // Service shape (mirrors ServiceConfig; in multi-spec runs this is
  // the per-lane shape — every lane gets `workers` workers, its own
  // queue and its own seed cache, like one single-spec server each).
  std::size_t queue_capacity = 256;
  std::size_t max_batch = 8;
  std::uint32_t batch_wait_us = 200;
  bool enable_seed_cache = true;
  service::CircuitBreakerConfig breaker;

  // Workload: per-client open-loop Poisson arrivals, optionally in
  // back-to-back bursts.  NOTE: virtual time is single-core — solves
  // serialize on the one simulated timeline — so sustainable load is
  // ~1/mean_solve_cost regardless of `workers` (workers still matter
  // for batching and interleaving semantics).
  double mean_interarrival_us = 4000.0;
  /// A client whose connection dies redials after this long (0 = stay
  /// dead; remaining quota becomes `unsent`).
  double reconnect_us = 1000.0;
  std::size_t burst_size = 1;          ///< frames sent per arrival
  double deadline_ms = 0.0;            ///< per-request deadline (0 = none)
  double deadline_fraction = 0.0;      ///< fraction of requests carrying it
  double low_priority_fraction = 0.0;  ///< fraction tagged Priority::kLow

  // Transport.
  double latency_us = 50.0;
  double jitter_us = 20.0;

  ModelSolverConfig solver;
  /// Armed for the run when non-empty; a zero plan seed inherits
  /// `seed` so one number reproduces the whole run.
  fault::FaultPlan faults;

  std::size_t trace_keep = 1 << 16;
};

/// Built-in scenario shapes ("baseline", "burst", "chaos", "overload",
/// "multispec").  Throws std::invalid_argument on an unknown name.
ScenarioConfig presetScenario(const std::string& name);
std::vector<std::string> scenarioNames();

/// Per-spec slice of a multi-spec run (empty in single-spec runs).
struct ScenarioSpecStats {
  std::uint32_t spec_id = 0;
  std::string name;
  service::ServiceStats stats;
};

struct ScenarioResult {
  std::uint64_t seed = 0;
  Trace trace;

  // Time: how long the simulated universe ran vs how long we did.
  double virtual_ms = 0.0;
  double wall_ms = 0.0;
  std::uint64_t tasks_executed = 0;

  // Client-observed request outcomes (each transmitted request lands
  // in exactly one bucket; unsent = quota never transmitted because
  // the client's connection died first).
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t wire_errors = 0;
  std::uint64_t conn_closed = 0;
  std::uint64_t unsent = 0;
  /// Connections reaped by the end-of-run stall sweep (stream desynced
  /// mid-frame by corruption; the sim's idle-timeout stand-in).
  std::uint64_t stalled_conns = 0;
  std::uint64_t reconnects = 0;
  // Responses by service verdict.
  std::uint64_t solved = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_exceeded = 0;

  /// Aggregated across every spec lane in multi-spec runs; the
  /// conservation invariants hold over this aggregate.
  service::ServiceStats service;
  /// One entry per registered spec when ScenarioConfig::specs > 1.
  std::vector<ScenarioSpecStats> per_spec;
  SimServerStats server;

  /// Invariant violations; empty means the run upheld every contract.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

ScenarioResult runScenario(const ScenarioConfig& config);

}  // namespace dadu::sim
