#include "dadu/sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "dadu/kinematics/presets.hpp"
#include "dadu/net/wire.hpp"
#include "dadu/platform/clock.hpp"
#include "dadu/registry/robot_spec_registry.hpp"
#include "dadu/registry/spec_router.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/sim/sim_clock.hpp"
#include "dadu/sim/sim_executor.hpp"
#include "dadu/sim/transport.hpp"

namespace dadu::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double nextUnit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Exponential draw with the given mean (us), capped so one unlucky
/// draw cannot stall a client for a simulated hour.
double nextExpUs(std::uint64_t& state, double mean_us) {
  const double u = nextUnit(state);
  return std::min(-mean_us * std::log(1.0 - u), mean_us * 20.0);
}

platform::Clock::duration usDuration(double us) {
  return std::chrono::duration_cast<platform::Clock::duration>(
      std::chrono::duration<double, std::micro>(std::max(us, 0.0)));
}

/// How one transmitted request ended, from the client's chair.
enum class Outcome : std::uint8_t {
  kPending = 0,
  kResponse,
  kWireError,
  kConnClosed,
};

struct Client {
  std::uint64_t id = 0;
  std::shared_ptr<SimConnection> conn;
  net::ByteBuffer in;
  bool open = true;
  std::size_t quota = 0;
  std::size_t sent = 0;
  std::uint64_t rng = 0;
  /// Open-loop arrival schedule: the next planned submission instant,
  /// advanced by the interarrival draw from the *planned* time, never
  /// from "now" — a clock jump (a long solve) must not silently
  /// reschedule offered load or overload degenerates to exactly the
  /// service rate.
  platform::Clock::time_point next_arrival{};
  std::vector<std::uint64_t> outstanding;  ///< request ids in flight
  std::vector<std::uint8_t> scratch;       ///< encode buffer
};

/// Everything the posted tasks share.  Lives on runScenario's stack,
/// declared before the executor so pending task captures die first.
struct Run {
  const ScenarioConfig* cfg = nullptr;
  SimExecutor* exec = nullptr;
  Trace* trace = nullptr;
  ScenarioResult* result = nullptr;
  SimServer* server = nullptr;
  /// Set once the workload drain ends: closes stop redialing so the
  /// teardown sweeps can actually converge.
  bool shutting_down = false;
  std::uint64_t next_request_id = 1;  ///< ids are 1-based, dense
  std::vector<Outcome> outcomes;      ///< indexed by request id - 1
  std::vector<std::uint8_t> outcome_count;

  std::uint64_t nowUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            exec->simClock().elapsed())
            .count());
  }

  void settle(std::uint64_t request_id, Outcome outcome) {
    const std::size_t i = static_cast<std::size_t>(request_id - 1);
    if (i >= outcomes.size()) return;
    outcomes[i] = outcome;
    if (outcome_count[i] < 255) ++outcome_count[i];
  }
};

void clientParse(Run& run, const std::shared_ptr<Client>& c);
void clientSubmit(Run& run, const std::shared_ptr<Client>& c);

void scheduleNextArrival(Run& run, const std::shared_ptr<Client>& c) {
  if (!c->open || c->sent >= c->quota) return;
  c->next_arrival +=
      usDuration(nextExpUs(c->rng, run.cfg->mean_interarrival_us));
  Run* r = &run;
  // A next_arrival already in the past (the clock jumped over it) runs
  // immediately: the backlog of offered load floods in, as it should.
  run.exec->postAt(c->next_arrival, [r, c] { clientSubmit(*r, c); });
}

void clientSubmit(Run& run, const std::shared_ptr<Client>& c) {
  if (!c->open) return;
  const ScenarioConfig& cfg = *run.cfg;
  const std::size_t burst =
      std::min(std::max<std::size_t>(cfg.burst_size, 1),
               c->quota - c->sent);
  for (std::size_t b = 0; b < burst && c->open; ++b) {
    net::WireRequest request;
    request.id = run.next_request_id++;
    // Spec selection.  The single-spec shape draws nothing here so
    // historical seeds keep replaying byte-identically; multi-spec (or
    // wrong-spec-injecting) runs spread requests uniformly over the
    // registered specs from the client's own RNG stream.
    request.spec_id = 0;
    if (cfg.specs > 1 || cfg.wrong_spec_fraction > 0.0) {
      const auto specs = static_cast<std::uint32_t>(
          std::max<std::size_t>(cfg.specs, 1));
      if (cfg.wrong_spec_fraction > 0.0 &&
          nextUnit(c->rng) < cfg.wrong_spec_fraction)
        request.spec_id = specs;  // first id the registry does not hold
      else
        request.spec_id =
            static_cast<std::uint32_t>(splitmix64(c->rng) % specs);
    }
    request.use_seed_cache = cfg.enable_seed_cache;
    if (cfg.low_priority_fraction > 0.0 &&
        nextUnit(c->rng) < cfg.low_priority_fraction)
      request.priority = service::Priority::kLow;
    // Targets in a unit box around the base: ModelSolver only checks
    // finiteness, but distinct targets keep the seed cache honest.
    request.target[0] = 2.0 * nextUnit(c->rng) - 1.0;
    request.target[1] = 2.0 * nextUnit(c->rng) - 1.0;
    request.target[2] = 2.0 * nextUnit(c->rng) - 1.0;
    if (cfg.deadline_fraction > 0.0 &&
        nextUnit(c->rng) < cfg.deadline_fraction)
      request.deadline_ms = cfg.deadline_ms;

    c->scratch.clear();
    net::encodeRequest(request, c->scratch);
    ++c->sent;
    ++run.result->sent;
    if (c->conn->send(Side::kClient, c->scratch.data(), c->scratch.size())) {
      c->outstanding.push_back(request.id);
      run.trace->record(run.nowUs(), "submit c=%llu r=%llu",
                        static_cast<unsigned long long>(c->id),
                        static_cast<unsigned long long>(request.id));
    } else {
      // The send itself died (injected drop / already-closed pipe):
      // the request never reached the wire.
      run.settle(request.id, Outcome::kConnClosed);
      ++run.result->conn_closed;
      run.trace->record(run.nowUs(), "sendfail c=%llu r=%llu",
                        static_cast<unsigned long long>(c->id),
                        static_cast<unsigned long long>(request.id));
    }
  }
  scheduleNextArrival(run, c);
}

void clientParse(Run& run, const std::shared_ptr<Client>& c) {
  while (c->open && !c->in.empty()) {
    net::DecodedFrame frame;
    const net::DecodeStatus status =
        net::decodeFrame(c->in.data(), c->in.size(),
                         net::kDefaultMaxFrameBytes, frame);
    if (status == net::DecodeStatus::kNeedMore) return;
    if (status != net::DecodeStatus::kOk) {
      // A server would never send garbage; corruption on the return
      // path lands here.  Hang up like the real client would.
      c->conn->close();
      return;
    }
    c->in.consume(frame.consumed);
    // Match the frame to an in-flight request FIRST.  A reply id this
    // client never sent (a corrupted request id echoed back) is a
    // protocol violation: like the real client, hang up rather than
    // mis-settle someone else's request.  The close handler then
    // accounts for everything genuinely outstanding.
    const std::uint64_t id = frame.type == net::MsgType::kResponse
                                 ? frame.response.id
                                 : frame.error.id;
    const auto it =
        std::find(c->outstanding.begin(), c->outstanding.end(), id);
    if (it == c->outstanding.end()) {
      c->conn->close();
      return;
    }
    c->outstanding.erase(it);
    if (frame.type == net::MsgType::kResponse) {
      const net::WireResponse& wire = frame.response;
      run.settle(wire.id, Outcome::kResponse);
      ++run.result->responses;
      const auto st = static_cast<service::ResponseStatus>(wire.status);
      if (st == service::ResponseStatus::kSolved)
        ++run.result->solved;
      else if (st == service::ResponseStatus::kDeadlineExceeded)
        ++run.result->deadline_exceeded;
      else
        ++run.result->rejected;
      run.trace->record(
          run.nowUs(), "resp r=%llu st=%u rej=%u it=%d q=%lld s=%lld",
          static_cast<unsigned long long>(wire.id), wire.status,
          wire.reject_reason, wire.iterations,
          static_cast<long long>(std::llround(wire.queue_ms * 1000.0)),
          static_cast<long long>(std::llround(wire.solve_ms * 1000.0)));
    } else if (frame.type == net::MsgType::kError) {
      run.settle(frame.error.id, Outcome::kWireError);
      ++run.result->wire_errors;
      run.trace->record(run.nowUs(), "err r=%llu code=%u",
                        static_cast<unsigned long long>(frame.error.id),
                        static_cast<unsigned>(frame.error.code));
    }
  }
}

void attachClient(Run& run, const std::shared_ptr<Client>& c) {
  Run* r = &run;
  c->conn->onReceive(Side::kClient,
                     [r, c](const std::uint8_t* data, std::size_t len) {
                       if (!c->open) return;
                       c->in.append(data, len);
                       clientParse(*r, c);
                     });
  c->conn->onClose(Side::kClient, [r, c] {
    if (!c->open) return;
    c->open = false;
    // Everything in flight died with the pipe — a terminal outcome the
    // invariants count.
    for (const std::uint64_t id : c->outstanding) {
      r->settle(id, Outcome::kConnClosed);
      ++r->result->conn_closed;
    }
    c->outstanding.clear();
    r->trace->record(r->nowUs(), "close c=%llu",
                     static_cast<unsigned long long>(c->id));
    // A real client redials.  Without this, long chaos runs decay to
    // silence as fault-injected closes pick the client pool off one by
    // one.  A client with no quota left, or a disabled redial, stays
    // down and its remainder becomes `unsent`.
    if (r->shutting_down || r->cfg->reconnect_us <= 0.0 ||
        c->sent >= c->quota) {
      r->result->unsent += c->quota - c->sent;
      return;
    }
    r->exec->postAt(
        r->exec->simClock().now() + usDuration(r->cfg->reconnect_us),
        [r, c] {
          if (r->shutting_down || c->open || c->sent >= c->quota) {
            r->result->unsent += c->quota - c->sent;
            return;
          }
          ++r->result->reconnects;
          LinkConfig link;
          link.latency_us = r->cfg->latency_us;
          link.jitter_us = r->cfg->jitter_us;
          c->conn = std::make_shared<SimConnection>(*r->exec, link,
                                                    splitmix64(c->rng));
          c->in.consume(c->in.size());
          c->open = true;
          attachClient(*r, c);
          r->server->accept(c->conn);
          r->trace->record(r->nowUs(), "redial c=%llu",
                           static_cast<unsigned long long>(c->id));
          scheduleNextArrival(*r, c);
        });
  });
}

}  // namespace

std::vector<std::string> scenarioNames() {
  return {"baseline", "burst", "chaos", "overload", "multispec"};
}

ScenarioConfig presetScenario(const std::string& name) {
  ScenarioConfig cfg;
  cfg.name = name;
  if (name == "baseline") {
    // Comfortable load, no faults: the determinism reference shape.
    return cfg;
  }
  if (name == "burst") {
    // Bursty arrivals against the batch coalescer: 16-deep trains with
    // long gaps, same average load as baseline.
    cfg.burst_size = 16;
    cfg.mean_interarrival_us = 64000.0;
    cfg.max_batch = 16;
    cfg.batch_wait_us = 300;
    return cfg;
  }
  if (name == "chaos") {
    // Faults at every layer, plus deadlines tight enough to trip.
    cfg.deadline_fraction = 0.3;
    cfg.deadline_ms = 5.0;
    cfg.faults.delayAt("service.worker.solve", 2.0, {0.02, 0, 0, 0});
    cfg.faults.errorAt("service.worker.solve", "injected solver fault",
                       {0.005, 0, 0, 0});
    cfg.faults.delayAt("solver.iterate", 5.0, {0.01, 0, 0, 0});
    cfg.faults.delayAt("service.worker.stall", 1.0, {0.01, 0, 0, 0});
    cfg.faults.corruptAt("net.client.write", {0.0005, 0, 0, 0});
    cfg.faults.dropAt("net.server.write", {0.0005, 0, 0, 0});
    return cfg;
  }
  if (name == "multispec") {
    // Three robots behind one server, plus a trickle of requests for a
    // spec nobody registered: routing, per-spec isolation and the
    // unknown-spec error path all under the conservation invariants.
    cfg.specs = 3;
    cfg.wrong_spec_fraction = 0.02;
    return cfg;
  }
  if (name == "overload") {
    // Offered load far past capacity: admission control, priority
    // shedding and the breaker all have to earn their keep.
    cfg.mean_interarrival_us = 40.0;
    cfg.queue_capacity = 64;
    cfg.workers = 2;
    cfg.low_priority_fraction = 0.3;
    cfg.deadline_fraction = 0.5;
    cfg.deadline_ms = 10.0;
    cfg.breaker.enabled = true;
    cfg.breaker.trip_queue_depth = 48;
    cfg.breaker.shed_queue_depth = 32;
    cfg.breaker.open_ms = 5.0;
    return cfg;
  }
  throw std::invalid_argument("unknown scenario '" + name + "'");
}

ScenarioResult runScenario(const ScenarioConfig& cfg) {
  platform::WallTimer wall;  // real time, even inside the simulator
  ScenarioResult result;
  result.seed = cfg.seed;
  result.trace = Trace(cfg.trace_keep);

  SimClock clock;
  Run run;  // before the executor: task captures must die first
  SimExecutor exec(clock, cfg.seed);
  run.cfg = &cfg;
  run.exec = &exec;
  run.trace = &result.trace;
  run.result = &result;
  run.outcomes.assign(cfg.requests, Outcome::kPending);
  run.outcome_count.assign(cfg.requests, 0);

  // One number reproduces everything: an unset fault-plan seed
  // inherits the scenario seed.
  std::optional<fault::ScopedFaultPlan> armed;
  if (!cfg.faults.rules.empty()) {
    fault::FaultPlan plan = cfg.faults;
    if (plan.seed == 0) plan.seed = cfg.seed;
    armed.emplace(std::move(plan));
  }

  result.trace.record(0, "run scenario=%s seed=%llu requests=%llu "
                         "clients=%llu workers=%llu batch=%llu wait=%u",
                      cfg.name.c_str(),
                      static_cast<unsigned long long>(cfg.seed),
                      static_cast<unsigned long long>(cfg.requests),
                      static_cast<unsigned long long>(cfg.clients),
                      static_cast<unsigned long long>(cfg.workers),
                      static_cast<unsigned long long>(cfg.max_batch),
                      cfg.batch_wait_us);

  service::ServiceConfig scfg;
  scfg.workers = std::max<std::size_t>(cfg.workers, 1);
  scfg.queue_capacity = cfg.queue_capacity;
  scfg.enable_seed_cache = cfg.enable_seed_cache;
  scfg.stat_shards = 1;
  scfg.breaker = cfg.breaker;
  scfg.max_batch = cfg.max_batch;
  scfg.batch_wait_us = cfg.batch_wait_us;
  scfg.clock = &clock;
  scfg.executor = &exec;
  const std::uint64_t seed = cfg.seed;
  ModelSolverConfig solver_cfg = cfg.solver;
  const std::size_t specs = std::max<std::size_t>(cfg.specs, 1);

  // Spec s solves a serpentine of dof + 2*s joints behind its own
  // service lane.  Every lane's ModelSolvers derive their streams from
  // (scenario seed, spec id, worker ordinal), so lanes are decorrelated
  // but the whole run still replays from one number.  The s == 0
  // mixing term is zero, which keeps single-spec runs byte-identical
  // to the pre-registry stack.
  const auto makeSpecFactory = [&](std::size_t s, const kin::Chain& chain) {
    auto counter = std::make_shared<std::uint64_t>(0);
    return service::SolverFactory([chain, solver_cfg, counter, seed, s] {
      ModelSolverConfig mc = solver_cfg;
      mc.seed = seed ^ (0x9e3779b97f4a7c15ull * ++*counter) ^
                (0x94d049bb133111ebull * static_cast<std::uint64_t>(s));
      return std::make_unique<ModelSolver>(chain, mc);
    });
  };

  // Single-spec runs keep the historical direct IkService path;
  // multi-spec runs stand up the same registry + SpecRouter the
  // production serve command uses.
  std::optional<service::IkService> service;
  std::optional<registry::RobotSpecRegistry> reg;
  std::optional<registry::SpecRouter> router;
  if (specs <= 1) {
    const kin::Chain chain =
        kin::makeSerpentine(std::max<std::size_t>(cfg.dof, 2));
    service.emplace(makeSpecFactory(0, chain), scfg);
  } else {
    reg.emplace();
    for (std::size_t s = 0; s < specs; ++s) {
      const std::size_t joints = std::max<std::size_t>(cfg.dof, 2) + 2 * s;
      registry::RobotSpec spec;
      spec.id = static_cast<std::uint32_t>(s);
      spec.name = "serpentine_" + std::to_string(joints);
      spec.chain_spec = "serpentine:" + std::to_string(joints);
      spec.chain = kin::makeSerpentine(joints);
      spec.factory = makeSpecFactory(s, spec.chain);
      reg->add(std::move(spec));
    }
    registry::RouterConfig rcfg;
    rcfg.base = scfg;  // every lane = one single-spec server's shape
    router.emplace(*reg, rcfg);
  }

  std::optional<SimServer> server;
  if (router)
    server.emplace(*router, exec, SimServerConfig{}, &result.trace);
  else
    server.emplace(*service, exec, SimServerConfig{}, &result.trace);
  run.server = &*server;

  const std::size_t clients = std::max<std::size_t>(cfg.clients, 1);
  std::vector<std::shared_ptr<Client>> pool;
  pool.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    auto c = std::make_shared<Client>();
    c->id = i + 1;
    c->quota = cfg.requests / clients + (i < cfg.requests % clients ? 1 : 0);
    c->rng = cfg.seed ^ (0xff51afd7ed558ccdull * (i + 1));
    LinkConfig link;
    link.latency_us = cfg.latency_us;
    link.jitter_us = cfg.jitter_us;
    c->conn = std::make_shared<SimConnection>(exec, link,
                                              cfg.seed ^ (i * 2 + 1));
    attachClient(run, c);
    server->accept(c->conn);
    pool.push_back(std::move(c));
  }
  for (const auto& c : pool) {
    c->next_arrival = clock.now();
    if (c->quota > 0) scheduleNextArrival(run, c);
  }

  // Run the universe dry.  The cap is a runaway backstop (a livelocked
  // component would otherwise spin forever), far above any legitimate
  // task count.
  const std::size_t cap = cfg.requests * 64 + 1'000'000;
  exec.drain(cap);
  if (exec.pending() != 0)
    result.violations.push_back(
        "executor did not quiesce within the task cap");
  run.shutting_down = true;  // teardown closes must not redial

  // Drain-stop the service lanes (inline under the executor contract),
  // then let any completions posted by the drain deliver.
  if (router)
    router->stop(service::IkService::Drain::kDrainPending);
  else
    service->stop(service::IkService::Drain::kDrainPending);
  exec.drain(cap);

  // Stall sweep: a corrupted length prefix can desync a stream into a
  // phantom frame that never completes — the real server reaps such
  // connections with its idle timeout; the sim does it here.  Only a
  // connection stuck mid-frame qualifies; in-flight requests on a
  // clean-buffered connection are a genuine leak and stay a violation.
  for (const auto& c : pool) {
    if (c->open && !c->outstanding.empty() && !c->in.empty()) {
      ++result.stalled_conns;
      result.trace.record(run.nowUs(), "stall c=%llu",
                          static_cast<unsigned long long>(c->id));
      c->conn->close();
    }
  }
  exec.drain(cap);

  result.virtual_ms =
      std::chrono::duration<double, std::milli>(clock.elapsed()).count();
  result.tasks_executed = exec.executed();
  if (router) {
    result.service = router->aggregatedStats();
    for (const registry::SpecLaneStats& lane : router->perSpecStats()) {
      ScenarioSpecStats slice;
      slice.spec_id = lane.spec->id;
      slice.name = lane.spec->name;
      slice.stats = lane.stats;
      result.per_spec.push_back(std::move(slice));
    }
  } else {
    result.service = service->stats();
  }
  result.server = server->stats();

  // --- Invariants -----------------------------------------------------
  // Exactly one outcome per transmitted request.
  const std::uint64_t allocated = run.next_request_id - 1;
  std::uint64_t unsettled = 0, multi = 0;
  for (std::uint64_t i = 0; i < allocated; ++i) {
    if (run.outcome_count[i] == 0) ++unsettled;
    if (run.outcome_count[i] > 1) ++multi;
  }
  if (unsettled != 0)
    result.violations.push_back(
        std::to_string(unsettled) + " requests ended with no outcome");
  if (multi != 0)
    result.violations.push_back(
        std::to_string(multi) + " requests ended with multiple outcomes");
  if (result.sent != allocated)
    result.violations.push_back("sent/id accounting mismatch");

  // Service-level conservation: every submit in exactly one terminal
  // bucket.
  if (result.service.submitted != result.service.accounted())
    result.violations.push_back(
        "service accounting leak: submitted=" +
        std::to_string(result.service.submitted) +
        " accounted=" + std::to_string(result.service.accounted()));
  // The server dispatched exactly what the service admitted, and every
  // dispatch completed exactly once.
  if (result.service.submitted != result.server.dispatched)
    result.violations.push_back(
        "dispatch mismatch: service submitted=" +
        std::to_string(result.service.submitted) +
        " server dispatched=" + std::to_string(result.server.dispatched));
  if (result.server.dispatched != result.server.completed)
    result.violations.push_back(
        "completion leak: dispatched=" +
        std::to_string(result.server.dispatched) +
        " completed=" + std::to_string(result.server.completed));
  if (result.server.completed !=
      result.server.responses_sent + result.server.orphaned)
    result.violations.push_back("completed != responses_sent + orphaned");

  result.trace.record(
      static_cast<std::uint64_t>(result.virtual_ms * 1000.0),
      "done sent=%llu resp=%llu err=%llu lost=%llu unsent=%llu "
      "solved=%llu rejected=%llu deadline=%llu",
      static_cast<unsigned long long>(result.sent),
      static_cast<unsigned long long>(result.responses),
      static_cast<unsigned long long>(result.wire_errors),
      static_cast<unsigned long long>(result.conn_closed),
      static_cast<unsigned long long>(result.unsent),
      static_cast<unsigned long long>(result.solved),
      static_cast<unsigned long long>(result.rejected),
      static_cast<unsigned long long>(result.deadline_exceeded));

  result.wall_ms = wall.elapsedMs();
  return result;
}

}  // namespace dadu::sim
