// Event trace of one simulation run: the determinism witness.
//
// Every observable event — a submit, a response, a connection death —
// is recorded as one text line stamped with its virtual time.  The
// whole line stream is folded into an FNV-1a digest as it is recorded,
// so "same seed => byte-identical run" is checkable in O(1) by
// comparing digests, and a bounded prefix of lines is retained for
// humans and for file diffs.  At a million requests the full trace
// would be hundreds of megabytes; the digest still covers every event
// while memory stays flat.
//
// Lines are formatted with snprintf into a stack buffer (no allocation
// past the retention limit) and use only integers and fixed-precision
// decimals, so formatting is bit-stable across runs and platforms.
#pragma once

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dadu::sim {

class Trace {
 public:
  /// Retain at most `keep` formatted lines (every line is digested
  /// regardless).
  explicit Trace(std::size_t keep = 1 << 16) : keep_(keep) {}

  /// Record one event at virtual microsecond `t_us` with a
  /// printf-formatted body.  The digested/retained line is
  /// "<t_us> <body>\n"; bodies longer than ~200 chars are clipped.
  void record(std::uint64_t t_us, const char* format, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 3, 4)))
#endif
      ;

  /// FNV-1a over every line recorded so far.
  std::uint64_t digest() const { return digest_; }
  std::uint64_t events() const { return events_; }
  /// Events digested but not retained (beyond the keep limit).
  std::uint64_t dropped() const { return events_ - retained_.size(); }
  const std::vector<std::string>& lines() const { return retained_; }

  /// Write the retained lines, then a trailer with the total event
  /// count and digest (so two trace files diff equal iff the *full*
  /// runs matched, even when lines were dropped).
  void writeTo(std::ostream& out) const;

 private:
  std::size_t keep_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
  std::uint64_t events_ = 0;
  std::vector<std::string> retained_;
};

}  // namespace dadu::sim
