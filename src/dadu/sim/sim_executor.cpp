#include "dadu/sim/sim_executor.hpp"

#include <algorithm>
#include <utility>

namespace dadu::sim {
namespace {

/// splitmix64 — same generator as dadu_fault's rule streams, so the
/// whole sim shares one reproducibility story.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

SimExecutor::SimExecutor(SimClock& clock, std::uint64_t seed)
    : clock_(clock), seed_(seed), rng_(seed ^ 0x6a09e667f3bcc909ull) {}

bool SimExecutor::later(const Entry& a, const Entry& b) {
  if (a.due != b.due) return a.due > b.due;
  if (a.jitter != b.jitter) return a.jitter > b.jitter;
  return a.seq > b.seq;
}

std::uint64_t SimExecutor::nextJitter() { return splitmix64(rng_); }

void SimExecutor::post(std::function<void()> task) {
  postAt(clock_.now(), std::move(task));
}

void SimExecutor::postAt(platform::Clock::time_point due,
                         std::function<void()> task) {
  // A due instant in the past is scheduled "now": virtual time never
  // rewinds, and a component computing now() + 0 must not starve.
  if (due < clock_.now()) due = clock_.now();
  heap_.push_back(Entry{due, nextJitter(), next_seq_++, std::move(task)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

bool SimExecutor::runOne() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  clock_.advanceTo(entry.due);
  ++executed_;
  entry.task();
  return true;
}

std::size_t SimExecutor::drain(std::size_t max_tasks) {
  std::size_t ran = 0;
  while (ran < max_tasks && runOne()) ++ran;
  return ran;
}

std::size_t SimExecutor::runUntil(platform::Clock::time_point until) {
  std::size_t ran = 0;
  while (!heap_.empty() && heap_.front().due <= until && runOne()) ++ran;
  clock_.advanceTo(until);
  return ran;
}

}  // namespace dadu::sim
