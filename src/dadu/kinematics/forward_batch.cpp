#include "dadu/kinematics/forward_batch.hpp"

#include <cassert>
#include <cmath>

namespace dadu::kin {
namespace {

// Advance the K accumulator transforms across one joint: A_k := A_k *
// {i-1}T_i(q_k), with the batch index innermost so every statement in
// the lane loop is a unit-stride multiply-add the compiler can
// vectorize.  The per-entry expressions reproduce dhTransform{Revolute,
// Prismatic} times the scalar 4x4 product term-for-term (left-to-right
// accumulation, row 3 contributions dropped — they are exact zeros and
// an exact +a(i,3)), so lane results match the scalar chain walk
// bit-for-bit up to the sign of zero rotation entries.
template <typename T, bool kPrismatic>
void advanceJoint(linalg::Mat34BatchT<T>& acc, const T* ct, const T* st,
                  T ca, T sa, T a_len, T d_fixed, const double* q,
                  std::size_t lo, std::size_t hi) {
  T* a00 = acc.row(0, 0); T* a01 = acc.row(0, 1); T* a02 = acc.row(0, 2); T* a03 = acc.row(0, 3);
  T* a10 = acc.row(1, 0); T* a11 = acc.row(1, 1); T* a12 = acc.row(1, 2); T* a13 = acc.row(1, 3);
  T* a20 = acc.row(2, 0); T* a21 = acc.row(2, 1); T* a22 = acc.row(2, 2); T* a23 = acc.row(2, 3);
  for (std::size_t k = lo; k < hi; ++k) {
    const T c = ct[k], s = st[k];
    // Column entries of {i-1}T_i at lane k (the dhTransform* values).
    const T b01 = -s * ca, b11 = c * ca;
    const T b02 = s * sa, b12 = -c * sa;
    const T b03 = a_len * c, b13 = a_len * s;
    T dl;
    if constexpr (kPrismatic)
      dl = d_fixed + static_cast<T>(q[k]);
    else
      dl = d_fixed;

    const T o00 = a00[k], o01 = a01[k], o02 = a02[k], o03 = a03[k];
    const T o10 = a10[k], o11 = a11[k], o12 = a12[k], o13 = a13[k];
    const T o20 = a20[k], o21 = a21[k], o22 = a22[k], o23 = a23[k];

    a00[k] = o00 * c + o01 * s;
    a01[k] = o00 * b01 + o01 * b11 + o02 * sa;
    a02[k] = o00 * b02 + o01 * b12 + o02 * ca;
    a03[k] = o00 * b03 + o01 * b13 + o02 * dl + o03;

    a10[k] = o10 * c + o11 * s;
    a11[k] = o10 * b01 + o11 * b11 + o12 * sa;
    a12[k] = o10 * b02 + o11 * b12 + o12 * ca;
    a13[k] = o10 * b03 + o11 * b13 + o12 * dl + o13;

    a20[k] = o20 * c + o21 * s;
    a21[k] = o20 * b01 + o21 * b11 + o22 * sa;
    a22[k] = o20 * b02 + o21 * b12 + o22 * ca;
    a23[k] = o20 * b03 + o21 * b13 + o22 * dl + o23;
  }
}

// One full chain walk over lanes [lo, hi): candidate formation, trig,
// and the per-joint batched advance.  T = double reproduces the Mat4
// path; T = float reproduces the forward_f32 path (candidates stay
// double, every FK intermediate is float).  `trig` is the per-joint DH
// constant table reset() precomputed: 4 entries per joint — cos/sin of
// the link twist alpha, cos/sin of the fixed theta offset.
template <typename T>
void walkLanes(const Chain& chain, linalg::Mat34BatchT<T>& acc,
               std::vector<T>& ct_buf, std::vector<T>& st_buf, double* cand,
               std::size_t lanes, const T* trig, const linalg::VecX& theta,
               const linalg::VecX& dtheta, const double* alpha,
               bool clamp_to_limits, std::size_t lo, std::size_t hi) {
  acc.setLanes(chain.base(), lo, hi);
  T* ct = ct_buf.data();
  T* st = st_buf.data();
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const Joint& joint = chain.joint(i);
    const DhParam& p = joint.dh;
    double* q = cand + i * lanes;

    // Candidate joint values theta_i + alpha_k * dtheta_i, clamped the
    // same way Joint::clamp does.
    const double ti = theta[i], di = dtheta[i];
    for (std::size_t k = lo; k < hi; ++k) q[k] = ti + alpha[k] * di;
    if (clamp_to_limits) {
      const double qmin = joint.min, qmax = joint.max;
      for (std::size_t k = lo; k < hi; ++k) {
        if (q[k] < qmin) q[k] = qmin;
        if (q[k] > qmax) q[k] = qmax;
      }
    }

    const T ca = trig[4 * i + 0];
    const T sa = trig[4 * i + 1];
    const T a_len = static_cast<T>(p.a);
    const T d_fix = static_cast<T>(p.d);
    if (joint.type == JointType::kRevolute) {
      const T t0 = static_cast<T>(p.theta);
      for (std::size_t k = lo; k < hi; ++k) {
        const T qk = t0 + static_cast<T>(q[k]);
        ct[k] = std::cos(qk);
        st[k] = std::sin(qk);
      }
      advanceJoint<T, false>(acc, ct, st, ca, sa, a_len, d_fix, q, lo, hi);
    } else {
      // Prismatic: the rotation block is fixed; only d varies per lane.
      const T c0 = trig[4 * i + 2];
      const T s0 = trig[4 * i + 3];
      for (std::size_t k = lo; k < hi; ++k) {
        ct[k] = c0;
        st[k] = s0;
      }
      advanceJoint<T, true>(acc, ct, st, ca, sa, a_len, d_fix, q, lo, hi);
    }
  }
}

// Fused sweep over every group's lanes.  Group-major on purpose: each
// group's accumulator slice (K lanes x 12 entries) stays L1-resident
// across its whole chain walk, exactly like a per-request sweep.  The
// joint-major alternative — one joint loop with all groups' lanes
// advanced per joint — re-streams every group's accumulator and
// candidate rows through cache once per joint and measured ~30% slower
// at 16 groups x 8 lanes x 24 joints; the per-joint constants it would
// have amortized live in the precomputed trig table instead.  Per lane
// this is literally walkLanes, so grouped results are bit-identical to
// per-group evaluateLanes calls.
template <typename T>
void walkGrouped(const Chain& chain, linalg::Mat34BatchT<T>& acc,
                 std::vector<T>& ct_buf, std::vector<T>& st_buf, double* cand,
                 std::size_t lanes, const T* trig,
                 const BatchedForward::LaneGroup* groups,
                 std::size_t group_count, const double* alpha,
                 bool clamp_to_limits) {
  for (std::size_t g = 0; g < group_count; ++g) {
    const BatchedForward::LaneGroup& grp = groups[g];
    walkLanes<T>(chain, acc, ct_buf, st_buf, cand, lanes, trig, *grp.theta,
                 *grp.dtheta, alpha, clamp_to_limits, grp.lane_begin,
                 grp.lane_end);
  }
}

}  // namespace

void BatchedForward::reset(const Chain& chain, std::size_t lanes) {
  dof_ = chain.dof();
  lanes_ = lanes;
  cand_.resize(dof_ * lanes);
  errors_.resize(lanes);
  if (precision_ == Precision::kF64) {
    acc_.resize(lanes);
    ct_.resize(lanes);
    st_.resize(lanes);
    trig_d_.resize(4 * dof_);
    for (std::size_t i = 0; i < dof_; ++i) {
      const DhParam& p = chain.joint(i).dh;
      trig_d_[4 * i + 0] = std::cos(p.alpha);
      trig_d_[4 * i + 1] = std::sin(p.alpha);
      trig_d_[4 * i + 2] = std::cos(p.theta);
      trig_d_[4 * i + 3] = std::sin(p.theta);
    }
  } else {
    acc_f_.resize(lanes);
    ctf_.resize(lanes);
    stf_.resize(lanes);
    trig_f_.resize(4 * dof_);
    // Same expressions as the f32 scalar walk: trig of the
    // float-narrowed angle, evaluated in float.
    for (std::size_t i = 0; i < dof_; ++i) {
      const DhParam& p = chain.joint(i).dh;
      trig_f_[4 * i + 0] = std::cos(static_cast<float>(p.alpha));
      trig_f_[4 * i + 1] = std::sin(static_cast<float>(p.alpha));
      trig_f_[4 * i + 2] = std::cos(static_cast<float>(p.theta));
      trig_f_[4 * i + 3] = std::sin(static_cast<float>(p.theta));
    }
  }
}

void BatchedForward::evaluateLanes(const Chain& chain,
                                   const linalg::VecX& theta,
                                   const linalg::VecX& dtheta,
                                   const double* alpha,
                                   const linalg::Vec3& target,
                                   bool clamp_to_limits,
                                   std::size_t lane_begin,
                                   std::size_t lane_end) {
  assert(chain.dof() == dof_ && "call reset() for this chain first");
  assert(lane_end <= lanes_ && lane_begin <= lane_end);
  chain.requireSize(theta);
  chain.requireSize(dtheta);
  if (lane_begin >= lane_end) return;

  if (precision_ == Precision::kF64) {
    walkLanes<double>(chain, acc_, ct_, st_, cand_.data(), lanes_,
                      trig_d_.data(), theta, dtheta, alpha, clamp_to_limits,
                      lane_begin, lane_end);
  } else {
    walkLanes<float>(chain, acc_f_, ctf_, stf_, cand_.data(), lanes_,
                     trig_f_.data(), theta, dtheta, alpha, clamp_to_limits,
                     lane_begin, lane_end);
  }

  // e_k = ||target - x_k||, accumulated x, y, z like Vec3::norm so the
  // scalar path's errors are reproduced exactly.  f32 positions are
  // widened to double first, as endEffectorPositionF32 does.
  const double tx = target.x, ty = target.y, tz = target.z;
  double* err = errors_.data();
  if (precision_ == Precision::kF64) {
    const double* px = acc_.row(0, 3);
    const double* py = acc_.row(1, 3);
    const double* pz = acc_.row(2, 3);
    for (std::size_t k = lane_begin; k < lane_end; ++k) {
      const double dx = tx - px[k], dy = ty - py[k], dz = tz - pz[k];
      err[k] = std::sqrt(dx * dx + dy * dy + dz * dz);
    }
  } else {
    const float* px = acc_f_.row(0, 3);
    const float* py = acc_f_.row(1, 3);
    const float* pz = acc_f_.row(2, 3);
    for (std::size_t k = lane_begin; k < lane_end; ++k) {
      const double dx = tx - static_cast<double>(px[k]);
      const double dy = ty - static_cast<double>(py[k]);
      const double dz = tz - static_cast<double>(pz[k]);
      err[k] = std::sqrt(dx * dx + dy * dy + dz * dz);
    }
  }
}

void BatchedForward::evaluateGrouped(const Chain& chain,
                                     const LaneGroup* groups,
                                     std::size_t group_count,
                                     const double* alpha,
                                     bool clamp_to_limits) {
  assert(chain.dof() == dof_ && "call reset() for this chain first");
  if (group_count == 0) return;
  for (std::size_t g = 0; g < group_count; ++g) {
    assert(groups[g].lane_end <= lanes_ &&
           groups[g].lane_begin <= groups[g].lane_end);
    chain.requireSize(*groups[g].theta);
    chain.requireSize(*groups[g].dtheta);
  }

  if (precision_ == Precision::kF64) {
    walkGrouped<double>(chain, acc_, ct_, st_, cand_.data(), lanes_,
                        trig_d_.data(), groups, group_count, alpha,
                        clamp_to_limits);
  } else {
    walkGrouped<float>(chain, acc_f_, ctf_, stf_, cand_.data(), lanes_,
                       trig_f_.data(), groups, group_count, alpha,
                       clamp_to_limits);
  }

  // Per-group errors against that group's own target, accumulated
  // exactly like the single-target path.
  double* err = errors_.data();
  for (std::size_t g = 0; g < group_count; ++g) {
    const LaneGroup& grp = groups[g];
    const double tx = grp.target.x, ty = grp.target.y, tz = grp.target.z;
    if (precision_ == Precision::kF64) {
      const double* px = acc_.row(0, 3);
      const double* py = acc_.row(1, 3);
      const double* pz = acc_.row(2, 3);
      for (std::size_t k = grp.lane_begin; k < grp.lane_end; ++k) {
        const double dx = tx - px[k], dy = ty - py[k], dz = tz - pz[k];
        err[k] = std::sqrt(dx * dx + dy * dy + dz * dz);
      }
    } else {
      const float* px = acc_f_.row(0, 3);
      const float* py = acc_f_.row(1, 3);
      const float* pz = acc_f_.row(2, 3);
      for (std::size_t k = grp.lane_begin; k < grp.lane_end; ++k) {
        const double dx = tx - static_cast<double>(px[k]);
        const double dy = ty - static_cast<double>(py[k]);
        const double dz = tz - static_cast<double>(pz[k]);
        err[k] = std::sqrt(dx * dx + dy * dy + dz * dz);
      }
    }
  }
}

linalg::Vec3 BatchedForward::position(std::size_t k) const {
  return precision_ == Precision::kF64 ? acc_.position(k) : acc_f_.position(k);
}

void BatchedForward::candidateInto(std::size_t k, linalg::VecX& out) const {
  if (out.size() != dof_) out.resize(dof_);
  const double* cand = cand_.data();
  for (std::size_t i = 0; i < dof_; ++i) out[i] = cand[i * lanes_ + k];
}

}  // namespace dadu::kin
