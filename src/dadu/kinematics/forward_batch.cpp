#include "dadu/kinematics/forward_batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dadu/kinematics/backends/spec_backend.hpp"
#include "dadu/kinematics/backends/walk_ref.hpp"

namespace dadu::kin {

BatchedForward::BatchedForward(Precision precision, const SpecBackend* backend)
    : precision_(precision),
      backend_(backend != nullptr ? backend : &dispatchedSpecBackend()) {}

void BatchedForward::reset(const Chain& chain, std::size_t lanes) {
  const SpecBackendCaps caps = backend_->caps();
  dof_ = chain.dof();
  lanes_ = lanes;
  // Pad the lane stride to the backend's vector width so every row of
  // every SoA array starts a whole register (the storage itself is
  // 64-byte aligned).  Padding lanes are never computed or read.
  const std::size_t mult = std::max<std::size_t>(caps.lane_multiple, 1);
  stride_ = ((lanes + mult - 1) / mult) * mult;
  max_walk_slice_lanes_.store(0, std::memory_order_relaxed);
  cand_.resize(dof_ * stride_);
  errors_.resize(stride_);
  if (precision_ == Precision::kF64) {
    acc_.resize(lanes, mult);
    ct_.resize(stride_);
    st_.resize(stride_);
    trig_d_.resize(4 * dof_);
    for (std::size_t i = 0; i < dof_; ++i) {
      const DhParam& p = chain.joint(i).dh;
      trig_d_[4 * i + 0] = std::cos(p.alpha);
      trig_d_[4 * i + 1] = std::sin(p.alpha);
      trig_d_[4 * i + 2] = std::cos(p.theta);
      trig_d_[4 * i + 3] = std::sin(p.theta);
    }
  } else {
    acc_f_.resize(lanes, mult);
    ctf_.resize(stride_);
    stf_.resize(stride_);
    trig_f_.resize(4 * dof_);
    // Same expressions as the f32 scalar walk: trig of the
    // float-narrowed angle, evaluated in float.
    for (std::size_t i = 0; i < dof_; ++i) {
      const DhParam& p = chain.joint(i).dh;
      trig_f_[4 * i + 0] = std::cos(static_cast<float>(p.alpha));
      trig_f_[4 * i + 1] = std::sin(static_cast<float>(p.alpha));
      trig_f_[4 * i + 2] = std::cos(static_cast<float>(p.theta));
      trig_f_[4 * i + 3] = std::sin(static_cast<float>(p.theta));
    }
  }
}

void BatchedForward::noteSlice(std::size_t lanes) {
  // Relaxed max-update: the seam is a diagnostic high-water mark, and
  // concurrent pool workers may race to publish their slice sizes.
  std::size_t seen = max_walk_slice_lanes_.load(std::memory_order_relaxed);
  while (lanes > seen &&
         !max_walk_slice_lanes_.compare_exchange_weak(
             seen, lanes, std::memory_order_relaxed)) {
  }
}

void BatchedForward::slicedWalkF64(const Chain& chain,
                                   const linalg::VecX& theta,
                                   const linalg::VecX& dtheta,
                                   const double* alpha,
                                   const linalg::Vec3& target,
                                   bool clamp_to_limits, std::size_t lo,
                                   std::size_t hi) {
  SpecLaneBlock block;
  block.acc = &acc_;
  block.cand = cand_.data();
  block.ct = ct_.data();
  block.st = st_.data();
  block.trig = trig_d_.data();
  block.errors = errors_.data();
  block.stride = stride_;

  // Slice to the backend's cache-residency budget: each slice's
  // accumulator lanes stay L1-resident across its whole chain walk.
  // Lanes are independent, so any split produces identical results.
  const std::size_t budget =
      std::max<std::size_t>(backend_->caps().max_fused_lanes, 1);
  for (std::size_t s = lo; s < hi; s += budget) {
    const std::size_t e = std::min(hi, s + budget);
    noteSlice(e - s);
    backend_->walkLanes(chain, block, theta, dtheta, alpha, clamp_to_limits,
                        s, e);
    backend_->reduceErrors(block, target, s, e);
  }
}

void BatchedForward::evaluateLanes(const Chain& chain,
                                   const linalg::VecX& theta,
                                   const linalg::VecX& dtheta,
                                   const double* alpha,
                                   const linalg::Vec3& target,
                                   bool clamp_to_limits,
                                   std::size_t lane_begin,
                                   std::size_t lane_end) {
  assert(chain.dof() == dof_ && "call reset() for this chain first");
  assert(lane_end <= lanes_ && lane_begin <= lane_end);
  chain.requireSize(theta);
  chain.requireSize(dtheta);
  if (lane_begin >= lane_end) return;

  if (precision_ == Precision::kF64) {
    slicedWalkF64(chain, theta, dtheta, alpha, target, clamp_to_limits,
                  lane_begin, lane_end);
  } else {
    noteSlice(lane_end - lane_begin);
    detail::walkLanes<float>(chain, acc_f_, ctf_.data(), stf_.data(),
                             cand_.data(), stride_, trig_f_.data(), theta,
                             dtheta, alpha, clamp_to_limits, lane_begin,
                             lane_end);
    detail::reduceErrors<float>(acc_f_, errors_.data(), target, lane_begin,
                                lane_end);
  }
}

void BatchedForward::evaluateGrouped(const Chain& chain,
                                     const LaneGroup* groups,
                                     std::size_t group_count,
                                     const double* alpha,
                                     bool clamp_to_limits) {
  assert(chain.dof() == dof_ && "call reset() for this chain first");
  if (group_count == 0) return;
  for (std::size_t g = 0; g < group_count; ++g) {
    assert(groups[g].lane_end <= lanes_ &&
           groups[g].lane_begin <= groups[g].lane_end);
    chain.requireSize(*groups[g].theta);
    chain.requireSize(*groups[g].dtheta);
  }

  // Group-major on purpose: each group's accumulator slice stays
  // L1-resident across its whole chain walk (a joint-major pass that
  // re-streams every group's lanes per joint measured ~30% slower).
  // Per lane this is exactly the single-target walk, so grouped
  // results are bit-identical to per-group evaluateLanes calls.
  for (std::size_t g = 0; g < group_count; ++g) {
    const LaneGroup& grp = groups[g];
    if (grp.lane_begin >= grp.lane_end) continue;
    if (precision_ == Precision::kF64) {
      slicedWalkF64(chain, *grp.theta, *grp.dtheta, alpha, grp.target,
                    clamp_to_limits, grp.lane_begin, grp.lane_end);
    } else {
      noteSlice(grp.lane_end - grp.lane_begin);
      detail::walkLanes<float>(chain, acc_f_, ctf_.data(), stf_.data(),
                               cand_.data(), stride_, trig_f_.data(),
                               *grp.theta, *grp.dtheta, alpha,
                               clamp_to_limits, grp.lane_begin, grp.lane_end);
      detail::reduceErrors<float>(acc_f_, errors_.data(), grp.target,
                                  grp.lane_begin, grp.lane_end);
    }
  }
}

linalg::Vec3 BatchedForward::position(std::size_t k) const {
  return precision_ == Precision::kF64 ? acc_.position(k) : acc_f_.position(k);
}

void BatchedForward::candidateInto(std::size_t k, linalg::VecX& out) const {
  if (out.size() != dof_) out.resize(dof_);
  const double* cand = cand_.data();
  for (std::size_t i = 0; i < dof_; ++i) out[i] = cand[i * stride_ + k];
}

}  // namespace dadu::kin
