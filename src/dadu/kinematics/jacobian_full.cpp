#include "dadu/kinematics/jacobian_full.hpp"

#include <algorithm>
#include <cmath>

#include "dadu/kinematics/forward.hpp"

namespace dadu::kin {

Pose endEffectorPose(const Chain& chain, const linalg::VecX& q) {
  const linalg::Mat4 t = forwardKinematics(chain, q);
  return {t.position(), t.rotation()};
}

void fullJacobian(const Chain& chain, const linalg::VecX& q, linalg::MatX& j,
                  std::vector<linalg::Mat4>& frames, Pose& ee) {
  chain.requireSize(q);
  const std::size_t n = chain.dof();
  if (j.rows() != 6 || j.cols() != n) j = linalg::MatX(6, n);

  linkFrames(chain, q, frames);
  ee.position = frames.back().position();
  ee.orientation = frames.back().rotation();

  for (std::size_t i = 0; i < n; ++i) {
    const linalg::Mat4& prev = i == 0 ? chain.base() : frames[i - 1];
    const linalg::Vec3 z = prev.rotation().col(2);
    linalg::Vec3 lin, ang;
    if (chain.joint(i).type == JointType::kRevolute) {
      lin = z.cross(ee.position - prev.position());
      ang = z;
    } else {
      lin = z;
      ang = linalg::Vec3::zero();
    }
    j(0, i) = lin.x;
    j(1, i) = lin.y;
    j(2, i) = lin.z;
    j(3, i) = ang.x;
    j(4, i) = ang.y;
    j(5, i) = ang.z;
  }
}

linalg::MatX fullJacobian(const Chain& chain, const linalg::VecX& q) {
  linalg::MatX j;
  std::vector<linalg::Mat4> frames;
  Pose ee;
  fullJacobian(chain, q, j, frames, ee);
  return j;
}

linalg::Vec3 orientationError(const linalg::Mat3& current,
                              const linalg::Mat3& target) {
  // Relative rotation in the base frame: R_err = R_target R_current^T.
  const linalg::Mat3 rel = target * current.transposed();
  // Rotation-vector (log map).  axis * sin(angle) is the skew part:
  const linalg::Vec3 skew{(rel(2, 1) - rel(1, 2)) / 2.0,
                          (rel(0, 2) - rel(2, 0)) / 2.0,
                          (rel(1, 0) - rel(0, 1)) / 2.0};
  const double c = std::clamp((rel.trace() - 1.0) / 2.0, -1.0, 1.0);
  const double s = skew.norm();
  const double angle = std::atan2(s, c);
  if (s < 1e-12) {
    // angle ~ 0 (skew vanishes, error negligible) or angle ~ pi (skew
    // vanishes but c ~ -1: extract the axis from the symmetric part).
    if (c > 0.0) return skew;  // first-order accurate near identity
    // R = 2 vv^T - I for a half-turn about unit v.
    linalg::Vec3 axis{std::sqrt(std::max(0.0, (rel(0, 0) + 1.0) / 2.0)),
                      std::sqrt(std::max(0.0, (rel(1, 1) + 1.0) / 2.0)),
                      std::sqrt(std::max(0.0, (rel(2, 2) + 1.0) / 2.0))};
    // Fix signs using the largest component.
    if (axis.x >= axis.y && axis.x >= axis.z) {
      if (rel(0, 1) < 0.0) axis.y = -axis.y;
      if (rel(0, 2) < 0.0) axis.z = -axis.z;
    } else if (axis.y >= axis.z) {
      if (rel(0, 1) < 0.0) axis.x = -axis.x;
      if (rel(1, 2) < 0.0) axis.z = -axis.z;
    } else {
      if (rel(0, 2) < 0.0) axis.x = -axis.x;
      if (rel(1, 2) < 0.0) axis.y = -axis.y;
    }
    return axis.normalized() * angle;
  }
  return skew * (angle / s);
}

linalg::VecX poseError(const Pose& current, const Pose& target,
                       double rotation_weight) {
  const linalg::Vec3 ep = target.position - current.position;
  const linalg::Vec3 eo =
      orientationError(current.orientation, target.orientation) *
      rotation_weight;
  return linalg::VecX{ep.x, ep.y, ep.z, eo.x, eo.y, eo.z};
}

}  // namespace dadu::kin
