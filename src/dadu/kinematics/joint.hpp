// Joint description: type and limits.
#pragma once

#include <limits>
#include <numbers>

#include "dadu/kinematics/dh.hpp"

namespace dadu::kin {

enum class JointType {
  kRevolute,   ///< variable = rotation about z_{i-1}
  kPrismatic,  ///< variable = translation along z_{i-1}
};

/// One joint of a serial chain: DH row + type + motion limits.
struct Joint {
  JointType type = JointType::kRevolute;
  DhParam dh;
  /// Joint-variable limits (rad or m).  Defaults are unlimited, which
  /// matches the paper's evaluation (free serpentine chains); presets
  /// with physical limits set them explicitly.
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();

  bool hasLimits() const {
    return min > -std::numeric_limits<double>::infinity() ||
           max < std::numeric_limits<double>::infinity();
  }

  /// {i-1}T_i at joint variable q.
  linalg::Mat4 transform(double q) const {
    return type == JointType::kRevolute ? dhTransformRevolute(dh, q)
                                        : dhTransformPrismatic(dh, q);
  }

  /// Clamp q into [min, max].
  double clamp(double q) const {
    if (q < min) return min;
    if (q > max) return max;
    return q;
  }
};

/// Convenience constructors.
inline Joint revolute(DhParam dh,
                      double min = -std::numeric_limits<double>::infinity(),
                      double max = std::numeric_limits<double>::infinity()) {
  return Joint{JointType::kRevolute, dh, min, max};
}
inline Joint prismatic(DhParam dh, double min, double max) {
  return Joint{JointType::kPrismatic, dh, min, max};
}

}  // namespace dadu::kin
