#include "dadu/kinematics/workspace.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>
#include <set>
#include <tuple>

#include "dadu/kinematics/forward.hpp"

namespace dadu::kin {
namespace {

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(next() >> 11) * 0x1.0p-53);
  }
};

}  // namespace

ReachBall reachBall(const Chain& chain) {
  return {chain.base().position(), chain.maxReach()};
}

bool plausiblyReachable(const Chain& chain, const linalg::Vec3& target,
                        double margin) {
  return reachBall(chain).contains(target, margin);
}

double workspaceCoverage(const Chain& chain, int samples, std::uint64_t seed,
                         double cell) {
  const ReachBall ball = reachBall(chain);
  if (ball.radius <= 0.0) return 0.0;
  SplitMix64 rng{seed};
  constexpr double kPi = std::numbers::pi;

  // Quantise attained positions onto a grid (in units of the ball
  // radius) and compare occupied cells to the cells of the ball.
  std::set<std::tuple<int, int, int>> occupied;
  linalg::VecX q(chain.dof());
  for (int s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < chain.dof(); ++i) {
      const Joint& j = chain.joint(i);
      const double lo = std::isfinite(j.min) ? j.min : -kPi;
      const double hi = std::isfinite(j.max) ? j.max : kPi;
      q[i] = rng.uniform(lo, hi);
    }
    const linalg::Vec3 p = (endEffectorPosition(chain, q) - ball.center) /
                           ball.radius;  // normalised coordinates
    occupied.insert({static_cast<int>(std::floor(p.x / cell)),
                     static_cast<int>(std::floor(p.y / cell)),
                     static_cast<int>(std::floor(p.z / cell))});
  }

  // Count grid cells whose centers lie inside the unit ball.
  long long ball_cells = 0;
  const int lim = static_cast<int>(std::ceil(1.0 / cell)) + 1;
  for (int x = -lim; x <= lim; ++x)
    for (int y = -lim; y <= lim; ++y)
      for (int z = -lim; z <= lim; ++z) {
        const double cx = (x + 0.5) * cell;
        const double cy = (y + 0.5) * cell;
        const double cz = (z + 0.5) * cell;
        if (cx * cx + cy * cy + cz * cz <= 1.0) ++ball_cells;
      }
  if (ball_cells == 0) return 0.0;
  return static_cast<double>(occupied.size()) /
         static_cast<double>(ball_cells);
}

}  // namespace dadu::kin
