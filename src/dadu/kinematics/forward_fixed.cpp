#include "dadu/kinematics/forward_fixed.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward.hpp"

namespace dadu::kin {
namespace {

using Raw = std::int64_t;

// 4x4 matrix of raw fixed-point values.
struct Mat4q {
  std::array<std::array<Raw, 4>, 4> m{};
};

Mat4q identity(const linalg::FixedFormat& fmt) {
  Mat4q r;
  for (int i = 0; i < 4; ++i) r.m[i][i] = fmt.one();
  return r;
}

Mat4q fromDouble(const linalg::FixedFormat& fmt, const linalg::Mat4& a) {
  Mat4q r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) r.m[i][j] = fmt.fromDouble(a(i, j));
  return r;
}

Mat4q mul(const linalg::FixedFormat& fmt, const Mat4q& a, const Mat4q& b) {
  Mat4q r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      Raw s = 0;
      for (int k = 0; k < 4; ++k) s += fmt.mul(a.m[i][k], b.m[k][j]);
      r.m[i][j] = s;
    }
  return r;
}

Mat4q dhTransformFixed(const linalg::FixedFormat& fmt, const Joint& joint,
                       double q) {
  const DhParam& p = joint.dh;
  Raw ct, st;
  double d_len = p.d;
  double joint_angle = p.theta;
  if (joint.type == JointType::kRevolute) {
    joint_angle += q;
  } else {
    d_len += q;
  }
  {
    const linalg::FixedSinCos sc = linalg::cordicSinCosFixed(fmt, joint_angle);
    ct = sc.cos_raw;
    st = sc.sin_raw;
  }
  // The twist alpha is a robot constant: its sin/cos would be a stored
  // coefficient in hardware, quantised once.
  const Raw ca = fmt.fromDouble(std::cos(p.alpha));
  const Raw sa = fmt.fromDouble(std::sin(p.alpha));
  const Raw a_len = fmt.fromDouble(p.a);

  Mat4q t;
  t.m[0][0] = ct;
  t.m[0][1] = -fmt.mul(st, ca);
  t.m[0][2] = fmt.mul(st, sa);
  t.m[0][3] = fmt.mul(a_len, ct);
  t.m[1][0] = st;
  t.m[1][1] = fmt.mul(ct, ca);
  t.m[1][2] = -fmt.mul(ct, sa);
  t.m[1][3] = fmt.mul(a_len, st);
  t.m[2][0] = 0;
  t.m[2][1] = sa;
  t.m[2][2] = ca;
  t.m[2][3] = fmt.fromDouble(d_len);
  t.m[3][0] = 0;
  t.m[3][1] = 0;
  t.m[3][2] = 0;
  t.m[3][3] = fmt.one();
  return t;
}

}  // namespace

linalg::Vec3 endEffectorPositionFixed(const Chain& chain,
                                      const linalg::VecX& q,
                                      const linalg::FixedFormat& fmt) {
  chain.requireSize(q);
  Mat4q t = chain.base() == linalg::Mat4::identity()
                ? identity(fmt)
                : fromDouble(fmt, chain.base());
  for (std::size_t i = 0; i < chain.dof(); ++i)
    t = mul(fmt, t, dhTransformFixed(fmt, chain.joint(i), q[i]));
  return {fmt.toDouble(t.m[0][3]), fmt.toDouble(t.m[1][3]),
          fmt.toDouble(t.m[2][3])};
}

double fkFixedMaxDeviation(const Chain& chain, const linalg::FixedFormat& fmt,
                           int samples, std::uint64_t seed) {
  std::uint64_t state = seed;
  const auto uniform_angle = [&state] {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return (2.0 * u - 1.0) * std::numbers::pi;
  };

  double worst = 0.0;
  linalg::VecX q(chain.dof());
  for (int s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < q.size(); ++i)
      q[i] = chain.joint(i).clamp(uniform_angle());
    const linalg::Vec3 fine = endEffectorPosition(chain, q);
    const linalg::Vec3 coarse = endEffectorPositionFixed(chain, q, fmt);
    worst = std::max(worst, (fine - coarse).norm());
  }
  return worst;
}

}  // namespace dadu::kin
