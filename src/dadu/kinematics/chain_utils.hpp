// Chain composition and slicing utilities — the mechanical operations
// a robot-description pipeline needs (mount a tool/arm on a torso,
// analyse a wrist in isolation).
#pragma once

#include <cstddef>
#include <string>

#include "dadu/kinematics/chain.hpp"

namespace dadu::kin {

/// Serial composition: `tip`'s joints appended after `base`'s (tip's
/// own base transform is folded into its first joint's parent frame by
/// construction order — callers needing an inter-chain fixed offset
/// should bake it into tip's first DH row).  Keeps all limits.
Chain appendChains(const Chain& base, const Chain& tip,
                   const std::string& name = "");

/// The sub-chain spanning joints [first, last) of `chain`, expressed
/// in joint first's parent frame.  Throws std::out_of_range on an
/// empty or out-of-bounds span.
Chain subChain(const Chain& chain, std::size_t first, std::size_t last,
               const std::string& name = "");

/// A copy of `chain` with every joint's limits replaced.
Chain withUniformLimits(const Chain& chain, double min, double max);

}  // namespace dadu::kin
