#include "dadu/kinematics/metrics.hpp"

#include <cmath>

#include "dadu/kinematics/jacobian.hpp"
#include "dadu/linalg/svd.hpp"

namespace dadu::kin {

double manipulability(const linalg::MatX& jacobian) {
  const linalg::Svd svd = linalg::svdJacobi(jacobian);
  double product = 1.0;
  for (std::size_t i = 0; i < svd.s.size(); ++i) product *= svd.s[i];
  return std::abs(product);  // = sqrt(det(J J^T)) for full row rank
}

double isotropyIndex(const linalg::MatX& jacobian) {
  const linalg::Svd svd = linalg::svdJacobi(jacobian);
  if (svd.s.size() == 0 || svd.s[0] <= 0.0) return 0.0;
  return svd.s[svd.s.size() - 1] / svd.s[0];
}

ConditioningReport conditioningAt(const Chain& chain, const linalg::VecX& q) {
  const linalg::MatX j = positionJacobian(chain, q);
  const linalg::Svd svd = linalg::svdJacobi(j);
  ConditioningReport report;
  double product = 1.0;
  for (std::size_t i = 0; i < svd.s.size(); ++i) product *= svd.s[i];
  report.manipulability = std::abs(product);
  report.sigma_max = svd.s.size() ? svd.s[0] : 0.0;
  report.sigma_min = svd.s.size() ? svd.s[svd.s.size() - 1] : 0.0;
  report.isotropy =
      report.sigma_max > 0.0 ? report.sigma_min / report.sigma_max : 0.0;
  return report;
}

}  // namespace dadu::kin
