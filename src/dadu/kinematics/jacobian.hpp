// Geometric position Jacobian (3 x N), Eq. 3 of the paper.
//
// For a revolute joint i with rotation axis z_{i-1} (expressed in the
// base frame) and frame origin p_{i-1}:
//
//   J_i = z_{i-1} x (p_N - p_{i-1})
//
// which is exactly the paper's Fig. 3 formulation J_i = {1}T_i.M *
// (^1T_N.P - ^1T_i.P) with the rotation block selecting the axis.  For
// a prismatic joint J_i = z_{i-1}.
//
// A finite-difference Jacobian is provided for verification only.
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// Compute J(q) into `j` (resized to 3 x dof).  `frames` is scratch for
/// the link frames; passing the same objects across iterations avoids
/// per-iteration allocation.  Also returns the end-effector position of
/// the same evaluation through `ee` so solvers do one FK pass per
/// iteration, mirroring the SPU pipeline which produces {1}T_N and J in
/// one sweep.
void positionJacobian(const Chain& chain, const linalg::VecX& q,
                      linalg::MatX& j, std::vector<linalg::Mat4>& frames,
                      linalg::Vec3& ee);

/// Allocating convenience overload.
linalg::MatX positionJacobian(const Chain& chain, const linalg::VecX& q);

/// Central-difference numerical Jacobian (verification reference).
linalg::MatX finiteDifferenceJacobian(const Chain& chain,
                                      const linalg::VecX& q,
                                      double h = 1e-6);

/// Multiply-add count of one analytic Jacobian evaluation (the SPU's
/// per-iteration serial work): N DH transforms + N 4x4 multiplies + N
/// cross products + the JJ^T E accumulation.
long long jacobianFlops(std::size_t dof);

}  // namespace dadu::kin
