// Workspace reasoning helpers: reach bounds and reachability tests used
// by workload generation (targets must be solvable, matching the
// paper's evaluation where every method is run to convergence) and by
// examples that visualise reachable sets.
#pragma once

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::kin {

/// Conservative outer bound of the reachable set: the ball of radius
/// maxReach() around the base origin.
struct ReachBall {
  linalg::Vec3 center;
  double radius = 0.0;

  bool contains(const linalg::Vec3& p, double margin = 0.0) const {
    return (p - center).norm() <= radius - margin;
  }
};

ReachBall reachBall(const Chain& chain);

/// True if `target` lies inside the chain's outer reach ball with
/// `margin` to spare.  Necessary (not sufficient) for solvability;
/// workload generation uses FK sampling for sufficiency.
bool plausiblyReachable(const Chain& chain, const linalg::Vec3& target,
                        double margin = 0.0);

/// Monte-Carlo estimate of the fraction of the reach ball's volume the
/// chain can actually attain; a coverage diagnostic for preset design
/// (serpentine chains should score high, planar chains ~0 in 3-D).
double workspaceCoverage(const Chain& chain, int samples = 2000,
                         std::uint64_t seed = 42, double cell = 0.1);

}  // namespace dadu::kin
