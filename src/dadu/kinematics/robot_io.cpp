#include "dadu/kinematics/robot_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dadu::kin {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("robot description line " + std::to_string(line) +
                           ": " + msg);
}

double parseNumber(int line, const std::string& key, const std::string& val) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(val, &consumed);
    if (consumed != val.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    fail(line, "bad numeric value for '" + key + "': '" + val + "'");
  }
}

Joint parseJoint(int line, std::istringstream& rest) {
  std::string type_word;
  if (!(rest >> type_word)) fail(line, "joint needs a type");
  JointType type;
  if (type_word == "revolute") {
    type = JointType::kRevolute;
  } else if (type_word == "prismatic") {
    type = JointType::kPrismatic;
  } else {
    fail(line, "unknown joint type '" + type_word + "'");
  }

  DhParam dh;
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
  bool has_min = false, has_max = false;

  std::string kv;
  while (rest >> kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) fail(line, "expected key=value, got '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const double val = parseNumber(line, key, kv.substr(eq + 1));
    if (key == "a") dh.a = val;
    else if (key == "alpha") dh.alpha = val;
    else if (key == "d") dh.d = val;
    else if (key == "theta") dh.theta = val;
    else if (key == "min") { min = val; has_min = true; }
    else if (key == "max") { max = val; has_max = true; }
    else fail(line, "unknown key '" + key + "'");
  }

  if (type == JointType::kPrismatic && (!has_min || !has_max))
    fail(line, "prismatic joints require min= and max=");
  return Joint{type, dh, min, max};
}

}  // namespace

Chain loadChain(std::istream& in) {
  std::string name = "robot";
  std::vector<Joint> joints;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only line

    if (keyword == "name") {
      if (!(line >> name)) fail(line_no, "name needs a value");
      std::string extra;
      if (line >> extra) fail(line_no, "unexpected token '" + extra + "'");
    } else if (keyword == "joint") {
      joints.push_back(parseJoint(line_no, line));
    } else {
      fail(line_no, "unknown directive '" + keyword + "'");
    }
  }

  if (joints.empty())
    throw std::runtime_error("robot description: no joints defined");
  return Chain(std::move(joints), std::move(name));
}

Chain loadChainFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open robot description: " + path);
  return loadChain(in);
}

void saveChain(const Chain& chain, std::ostream& out) {
  out << "# Dadu robot description (see dadu/kinematics/robot_io.hpp)\n";
  out << "name " << chain.name() << '\n';
  out.precision(17);
  for (const Joint& j : chain.joints()) {
    out << "joint "
        << (j.type == JointType::kRevolute ? "revolute" : "prismatic")
        << " a=" << j.dh.a << " alpha=" << j.dh.alpha << " d=" << j.dh.d
        << " theta=" << j.dh.theta;
    if (j.hasLimits() || j.type == JointType::kPrismatic)
      out << " min=" << j.min << " max=" << j.max;
    out << '\n';
  }
}

void saveChainFile(const Chain& chain, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write robot description: " + path);
  saveChain(chain, out);
}

}  // namespace dadu::kin
