#include "dadu/kinematics/chain_utils.hpp"

#include <stdexcept>

namespace dadu::kin {

Chain appendChains(const Chain& base, const Chain& tip,
                   const std::string& name) {
  std::vector<Joint> joints = base.joints();
  joints.insert(joints.end(), tip.joints().begin(), tip.joints().end());
  return Chain(std::move(joints),
               name.empty() ? base.name() + "+" + tip.name() : name,
               base.base());
}

Chain subChain(const Chain& chain, std::size_t first, std::size_t last,
               const std::string& name) {
  if (first >= last || last > chain.dof())
    throw std::out_of_range("subChain: invalid span [" +
                            std::to_string(first) + ", " +
                            std::to_string(last) + ") of " +
                            std::to_string(chain.dof()) + " joints");
  std::vector<Joint> joints(chain.joints().begin() + static_cast<long>(first),
                            chain.joints().begin() + static_cast<long>(last));
  return Chain(std::move(joints),
               name.empty() ? chain.name() + "[" + std::to_string(first) +
                                  ":" + std::to_string(last) + "]"
                            : name);
}

Chain withUniformLimits(const Chain& chain, double min, double max) {
  std::vector<Joint> joints = chain.joints();
  for (Joint& j : joints) {
    j.min = min;
    j.max = max;
  }
  return Chain(std::move(joints), chain.name() + "-limited", chain.base());
}

}  // namespace dadu::kin
