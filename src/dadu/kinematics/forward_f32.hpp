// Single-precision forward kinematics.
//
// An HLS-generated accelerator datapath would plausibly be built from
// FP32 (or narrower) multipliers rather than FP64 — at 65 nm an FP32
// multiplier is ~4x smaller and lower-energy.  This evaluates f(theta)
// with every intermediate held in float, exactly as a 32-bit FKU
// would, so the precision ablation can measure whether the paper's
// 1e-2 m accuracy target survives a single-precision datapath (it
// does, with orders of magnitude to spare — see ablation_precision).
#pragma once

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// End-effector position with all FK arithmetic performed in float.
/// The result is widened to double only at the very end.
linalg::Vec3 endEffectorPositionF32(const Chain& chain,
                                    const linalg::VecX& q);

/// Worst-case deviation between the f32 and f64 FK over `samples`
/// random configurations (diagnostic used by tests and the ablation).
double fkF32MaxDeviation(const Chain& chain, int samples,
                         std::uint64_t seed = 7);

}  // namespace dadu::kin
