#include "dadu/kinematics/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dadu::kin {

std::vector<linalg::VecX> planar2RInverse(double l1, double l2,
                                          const linalg::Vec3& target,
                                          double tol) {
  const double x = target.x;
  const double y = target.y;
  const double r2 = x * x + y * y;
  const double r = std::sqrt(r2);

  std::vector<linalg::VecX> solutions;
  const double reach = l1 + l2;
  const double inner = std::abs(l1 - l2);
  if (r > reach + tol || r < inner - tol) return solutions;  // unreachable

  // Law of cosines for the elbow.
  const double c2 =
      std::clamp((r2 - l1 * l1 - l2 * l2) / (2.0 * l1 * l2), -1.0, 1.0);
  const double s2 = std::sqrt(std::max(0.0, 1.0 - c2 * c2));

  const auto solution = [&](double sign) {
    const double q2 = std::atan2(sign * s2, c2);
    const double q1 =
        std::atan2(y, x) - std::atan2(l2 * std::sin(q2), l1 + l2 * std::cos(q2));
    return linalg::VecX{q1, q2};
  };

  solutions.push_back(solution(+1.0));
  // The two branches coincide when the elbow is straight.  Near the
  // boundary c2 = 1 - eps gives s2 ~ sqrt(2 eps), so the merge
  // threshold on s2 is sqrt(2 tol), not tol.
  if (s2 > std::sqrt(2.0 * tol)) solutions.push_back(solution(-1.0));
  return solutions;
}

std::vector<linalg::VecX> planar2RInverse(const Chain& chain,
                                          const linalg::Vec3& target,
                                          double tol) {
  if (chain.dof() != 2)
    throw std::invalid_argument("planar2RInverse: chain is not 2-DOF");
  for (const Joint& j : chain.joints()) {
    if (j.type != JointType::kRevolute || j.dh.alpha != 0.0 ||
        j.dh.d != 0.0 || j.dh.theta != 0.0)
      throw std::invalid_argument("planar2RInverse: chain is not planar 2R");
  }
  return planar2RInverse(chain.joint(0).dh.a, chain.joint(1).dh.a, target,
                         tol);
}

}  // namespace dadu::kin
