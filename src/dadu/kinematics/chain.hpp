// Serial kinematic chain: the robot model every solver and the
// accelerator simulator operate on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dadu/kinematics/joint.hpp"
#include "dadu/linalg/mat4.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// An open serial chain of joints with an optional fixed base frame.
///
/// Invariant: after construction the chain has at least one joint and
/// all DH rows are finite (validated; violations throw).
class Chain {
 public:
  Chain() = default;
  explicit Chain(std::vector<Joint> joints, std::string name = "chain",
                 linalg::Mat4 base = linalg::Mat4::identity());

  std::size_t dof() const { return joints_.size(); }
  const std::vector<Joint>& joints() const { return joints_; }
  const Joint& joint(std::size_t i) const { return joints_[i]; }
  const linalg::Mat4& base() const { return base_; }
  const std::string& name() const { return name_; }

  /// Sum of |a| + |d| over all joints: an upper bound on the distance
  /// from base to end-effector, used by workspace sampling.
  double maxReach() const;

  /// True iff every component of q is within its joint's limits.
  bool withinLimits(const linalg::VecX& q) const;

  /// Clamp a joint vector into the chain's limits, component-wise.
  linalg::VecX clampToLimits(const linalg::VecX& q) const;

  /// Zero joint vector of the right length.
  linalg::VecX zeroConfiguration() const { return linalg::VecX(dof()); }

  /// Throws std::invalid_argument if q.size() != dof(); the uniform
  /// precondition check of every kinematics entry point.
  void requireSize(const linalg::VecX& q) const;

 private:
  std::vector<Joint> joints_;
  std::string name_;
  linalg::Mat4 base_ = linalg::Mat4::identity();
};

}  // namespace dadu::kin
