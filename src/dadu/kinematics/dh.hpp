// Denavit-Hartenberg parameters and per-joint transformation matrices.
//
// The paper's Eq. 10 writes forward kinematics as f(theta) =
// prod_{i=1..N} {i-1}T_i where {i-1}T_i is the 4x4 transformation
// matrix of joint i.  We use the standard (distal) DH convention:
//
//   {i-1}T_i = RotZ(theta_i) * TransZ(d_i) * TransX(a_i) * RotX(alpha_i)
//
// For a revolute joint theta_i is the joint variable (plus a fixed
// offset); for a prismatic joint d_i is.
#pragma once

#include <cmath>

#include "dadu/linalg/mat4.hpp"

namespace dadu::kin {

/// One row of a DH table.
struct DhParam {
  double a = 0.0;      ///< link length (m), along x_i
  double alpha = 0.0;  ///< link twist (rad), about x_i
  double d = 0.0;      ///< link offset (m), along z_{i-1}
  double theta = 0.0;  ///< joint angle offset (rad), about z_{i-1}
};

/// {i-1}T_i for a revolute joint at angle q (added to the table's fixed
/// theta offset).  Written out in closed form — this is the matrix the
/// accelerator's "Compute {i-1}T_i" pipeline stage produces, and the
/// FLOP counts in the cycle model (4 trig + 16 mul + 8 add) match it.
inline linalg::Mat4 dhTransformRevolute(const DhParam& p, double q) {
  const double ct = std::cos(p.theta + q);
  const double st = std::sin(p.theta + q);
  const double ca = std::cos(p.alpha);
  const double sa = std::sin(p.alpha);
  linalg::Mat4 t;
  t(0, 0) = ct; t(0, 1) = -st * ca; t(0, 2) = st * sa;  t(0, 3) = p.a * ct;
  t(1, 0) = st; t(1, 1) = ct * ca;  t(1, 2) = -ct * sa; t(1, 3) = p.a * st;
  t(2, 0) = 0;  t(2, 1) = sa;       t(2, 2) = ca;       t(2, 3) = p.d;
  t(3, 0) = 0;  t(3, 1) = 0;        t(3, 2) = 0;        t(3, 3) = 1;
  return t;
}

/// {i-1}T_i for a prismatic joint with extension q (added to d).
inline linalg::Mat4 dhTransformPrismatic(const DhParam& p, double q) {
  const double ct = std::cos(p.theta);
  const double st = std::sin(p.theta);
  const double ca = std::cos(p.alpha);
  const double sa = std::sin(p.alpha);
  linalg::Mat4 t;
  t(0, 0) = ct; t(0, 1) = -st * ca; t(0, 2) = st * sa;  t(0, 3) = p.a * ct;
  t(1, 0) = st; t(1, 1) = ct * ca;  t(1, 2) = -ct * sa; t(1, 3) = p.a * st;
  t(2, 0) = 0;  t(2, 1) = sa;       t(2, 2) = ca;       t(2, 3) = p.d + q;
  t(3, 0) = 0;  t(3, 1) = 0;        t(3, 2) = 0;        t(3, 3) = 1;
  return t;
}

}  // namespace dadu::kin
