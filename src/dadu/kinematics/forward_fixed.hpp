// Fixed-point forward kinematics: the FK chain evaluated entirely in a
// Qm.n datapath with CORDIC trigonometry — the word-length study an
// ASIC team would run before committing the FKU's arithmetic.
//
// Positions, rotation entries and all 4x4-product intermediates are
// held as int64 raw values in the chosen format; only the final
// position is converted back to double.
#pragma once

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/fixed_point.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// End-effector position computed in the given fixed-point format.
linalg::Vec3 endEffectorPositionFixed(const Chain& chain,
                                      const linalg::VecX& q,
                                      const linalg::FixedFormat& fmt);

/// Worst-case deviation from the double FK over `samples` random
/// configurations — the word-length sweep's y-axis.
double fkFixedMaxDeviation(const Chain& chain, const linalg::FixedFormat& fmt,
                           int samples, std::uint64_t seed = 7);

}  // namespace dadu::kin
