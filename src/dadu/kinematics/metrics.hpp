// Kinematic conditioning metrics: the standard dexterity measures a
// controller consults to stay away from singular regions (where every
// first-order IK method, including Quick-IK, slows down or stalls).
#pragma once

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/matx.hpp"

namespace dadu::kin {

/// Yoshikawa manipulability sqrt(det(J J^T)): volume of the velocity
/// ellipsoid; 0 exactly at singular configurations.
double manipulability(const linalg::MatX& jacobian);

/// sigma_min / sigma_max of J, in [0, 1]: 1 = isotropic velocity
/// ellipsoid, 0 = singular.
double isotropyIndex(const linalg::MatX& jacobian);

/// Convenience: both metrics at a configuration.
struct ConditioningReport {
  double manipulability = 0.0;
  double isotropy = 0.0;
  double sigma_min = 0.0;
  double sigma_max = 0.0;
};
ConditioningReport conditioningAt(const Chain& chain, const linalg::VecX& q);

}  // namespace dadu::kin
