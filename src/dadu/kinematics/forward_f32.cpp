#include "dadu/kinematics/forward_f32.hpp"

#include <cmath>
#include <numbers>

#include "dadu/kinematics/forward.hpp"

namespace dadu::kin {
namespace {

// Minimal float 4x4 machinery, local to this unit: the point is that
// *every* intermediate is a float, so reusing the double Mat4 would
// defeat the purpose.
struct Mat4f {
  float m[4][4] = {};

  static Mat4f identity() {
    Mat4f r;
    for (int i = 0; i < 4; ++i) r.m[i][i] = 1.0f;
    return r;
  }
};

Mat4f mul(const Mat4f& a, const Mat4f& b) {
  Mat4f r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      float s = 0.0f;
      for (int k = 0; k < 4; ++k) s += a.m[i][k] * b.m[k][j];
      r.m[i][j] = s;
    }
  return r;
}

Mat4f fromDouble(const linalg::Mat4& a) {
  Mat4f r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) r.m[i][j] = static_cast<float>(a(i, j));
  return r;
}

Mat4f dhTransformF32(const Joint& joint, float q) {
  const auto& p = joint.dh;
  float ct, st, ca, sa, a_len, d_len;
  if (joint.type == JointType::kRevolute) {
    ct = std::cos(static_cast<float>(p.theta) + q);
    st = std::sin(static_cast<float>(p.theta) + q);
    ca = std::cos(static_cast<float>(p.alpha));
    sa = std::sin(static_cast<float>(p.alpha));
    a_len = static_cast<float>(p.a);
    d_len = static_cast<float>(p.d);
  } else {
    ct = std::cos(static_cast<float>(p.theta));
    st = std::sin(static_cast<float>(p.theta));
    ca = std::cos(static_cast<float>(p.alpha));
    sa = std::sin(static_cast<float>(p.alpha));
    a_len = static_cast<float>(p.a);
    d_len = static_cast<float>(p.d) + q;
  }
  Mat4f t;
  t.m[0][0] = ct;   t.m[0][1] = -st * ca; t.m[0][2] = st * sa;  t.m[0][3] = a_len * ct;
  t.m[1][0] = st;   t.m[1][1] = ct * ca;  t.m[1][2] = -ct * sa; t.m[1][3] = a_len * st;
  t.m[2][0] = 0.0f; t.m[2][1] = sa;       t.m[2][2] = ca;       t.m[2][3] = d_len;
  t.m[3][0] = 0.0f; t.m[3][1] = 0.0f;     t.m[3][2] = 0.0f;     t.m[3][3] = 1.0f;
  return t;
}

}  // namespace

linalg::Vec3 endEffectorPositionF32(const Chain& chain,
                                    const linalg::VecX& q) {
  chain.requireSize(q);
  Mat4f t = fromDouble(chain.base());
  for (std::size_t i = 0; i < chain.dof(); ++i)
    t = mul(t, dhTransformF32(chain.joint(i), static_cast<float>(q[i])));
  return {static_cast<double>(t.m[0][3]), static_cast<double>(t.m[1][3]),
          static_cast<double>(t.m[2][3])};
}

double fkF32MaxDeviation(const Chain& chain, int samples,
                         std::uint64_t seed) {
  // Inline SplitMix64 (kinematics must not depend on workload).
  std::uint64_t state = seed;
  const auto uniform_angle = [&state] {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return (2.0 * u - 1.0) * std::numbers::pi;
  };

  double worst = 0.0;
  linalg::VecX q(chain.dof());
  for (int s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < q.size(); ++i)
      q[i] = chain.joint(i).clamp(uniform_angle());
    const linalg::Vec3 fine = endEffectorPosition(chain, q);
    const linalg::Vec3 coarse = endEffectorPositionF32(chain, q);
    worst = std::max(worst, (fine - coarse).norm());
  }
  return worst;
}

}  // namespace dadu::kin
