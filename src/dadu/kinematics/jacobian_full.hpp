// Full geometric Jacobian (6 x N) and pose error — the orientation
// extension of the paper's position-only pipeline.
//
// The paper evaluates position IK (X is a 3-vector), but any real
// manipulator controller also commands orientation.  The transpose
// method generalises verbatim: stack the angular rows under the linear
// rows and feed the 6-dimensional task error through the same
// machinery.  Rows 0-2 are the position Jacobian of jacobian.hpp; rows
// 3-5 are the angular Jacobian (z_{i-1} for revolute joints, 0 for
// prismatic).
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// A task-space pose target/measurement.
struct Pose {
  linalg::Vec3 position;
  linalg::Mat3 orientation = linalg::Mat3::identity();
};

/// Pose of the end effector at q.
Pose endEffectorPose(const Chain& chain, const linalg::VecX& q);

/// Compute the 6 x N geometric Jacobian into `j` (rows 0-2 linear,
/// rows 3-5 angular), plus the end-effector pose of the same FK pass.
void fullJacobian(const Chain& chain, const linalg::VecX& q, linalg::MatX& j,
                  std::vector<linalg::Mat4>& frames, Pose& ee);

/// Allocating convenience overload.
linalg::MatX fullJacobian(const Chain& chain, const linalg::VecX& q);

/// Rotation-vector (axis * angle) form of the rotation taking
/// `current` to `target`: the angular task error the angular Jacobian
/// rows are conjugate to.  Magnitude equals the geodesic angle.
linalg::Vec3 orientationError(const linalg::Mat3& current,
                              const linalg::Mat3& target);

/// Stacked 6-vector task error [position; rotation_weight * angular].
/// `rotation_weight` converts radians to the metre scale of the
/// position rows so one accuracy threshold can govern both.
linalg::VecX poseError(const Pose& current, const Pose& target,
                       double rotation_weight);

}  // namespace dadu::kin
