// Batched speculative forward kinematics — the software FKU array.
//
// Quick-IK's inner loop (Algorithm 1, lines 6-15) evaluates K
// candidates theta + alpha_k * dtheta_base, one FK pass each.  The
// scalar path walks the chain once *per candidate*; this kernel walks
// it once *total*: at each joint it forms the K candidate joint values,
// takes their K sin/cos, and advances K accumulator transforms held in
// structure-of-arrays layout (linalg::Mat34Batch, batch index
// innermost).  Besides turning the 4x4 chain product into unit-stride
// lane arithmetic the compiler can vectorize, hoisting the chain walk
// shares everything that is per-joint rather than per-candidate:
// cos/sin of the fixed link twist alpha happen once per joint instead
// of once per joint per candidate, and no candidate VecX or Mat4
// temporaries exist at all.
//
// The kernel evaluates an arbitrary contiguous lane range so a thread
// pool can split the batch into per-worker chunks that write disjoint
// slices of the shared workspace — lane chunks, not per-candidate
// closures.  Results are identical regardless of the split: each lane
// is written exactly once, by whichever caller owns its range.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/mat34_batch.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

class SpecBackend;

/// Batched FK over K speculative candidates.  Owns its workspace:
/// reset() sizes it (idempotent, allocation-free once warm) and
/// evaluateLanes() fills it with zero allocations, so a solver can
/// hold one instance and reuse it every iteration.
///
/// The f64 arithmetic runs through a pluggable SpecBackend (scalar /
/// AVX2 / AVX-512 — see backends/spec_backend.hpp): the instance binds
/// to the process-dispatched backend at construction, or to an
/// explicit one passed in (parity tests, benches).  Walks longer than
/// the backend's fused-lane budget are transparently sliced so every
/// contiguous walk stays cache-resident; lanes are independent, so
/// slicing never changes results.  The f32 datapath (the FP32-FKU
/// model) always uses the scalar reference walk.
class BatchedForward {
 public:
  /// Arithmetic of the accumulator datapath.  kF64 reproduces
  /// endEffectorPosition() bit-for-bit (modulo signed zeros); kF32
  /// reproduces endEffectorPositionF32() — every intermediate held in
  /// float, candidates and errors still formed in double.
  enum class Precision { kF64, kF32 };

  /// `backend` = nullptr binds the process-dispatched backend (CPUID +
  /// DADU_SPEC_BACKEND / --spec-backend override, resolved at
  /// construction time).
  explicit BatchedForward(Precision precision = Precision::kF64,
                          const SpecBackend* backend = nullptr);

  Precision precision() const { return precision_; }
  std::size_t lanes() const { return lanes_; }
  std::size_t dof() const { return dof_; }

  /// The speculation backend this instance is bound to.
  const SpecBackend& backend() const { return *backend_; }

  /// High-water mark of lanes handed to a single contiguous backend
  /// walk since the last reset() — the cache-residency seam: stays at
  /// or below backend().caps().max_fused_lanes no matter how large a
  /// lane range or group the caller passes.
  std::size_t maxWalkSliceLanes() const {
    return max_walk_slice_lanes_.load(std::memory_order_relaxed);
  }

  /// Size the workspace for `lanes` candidates over `chain`.  Call
  /// once before evaluateLanes (and again whenever the lane count or
  /// chain changes); repeated calls at or below the high-water mark do
  /// not allocate.
  void reset(const Chain& chain, std::size_t lanes);

  /// Evaluate candidates k in [lane_begin, lane_end):
  ///
  ///   theta_k = theta + alpha[k] * dtheta   (clamped to the chain's
  ///             joint limits when clamp_to_limits is set)
  ///   x_k     = f(theta_k)                  (one shared chain walk)
  ///   e_k     = ||target - x_k||
  ///
  /// filling the candidate matrix, positions and errors for exactly
  /// those lanes.  Distinct lane ranges touch disjoint memory, so
  /// concurrent calls over a partition of [0, lanes) are race-free.
  void evaluateLanes(const Chain& chain, const linalg::VecX& theta,
                     const linalg::VecX& dtheta, const double* alpha,
                     const linalg::Vec3& target, bool clamp_to_limits,
                     std::size_t lane_begin, std::size_t lane_end);

  /// One request's slice of a fused multi-target sweep: lanes
  /// [lane_begin, lane_end) form candidates theta + alpha[k] * dtheta
  /// and score them against `target`.  theta/dtheta are borrowed — the
  /// caller keeps them alive across evaluateGrouped.
  struct LaneGroup {
    const linalg::VecX* theta = nullptr;
    const linalg::VecX* dtheta = nullptr;
    linalg::Vec3 target{};
    std::size_t lane_begin = 0;
    std::size_t lane_end = 0;
  };

  /// Fused multi-request sweep: evaluate every group's lanes through
  /// one shared SoA workspace in a single call.  Per-joint constants
  /// (link-twist trig, DH offsets) come from the table reset()
  /// precomputed, so no group recomputes them; the walk itself is
  /// group-major — each group's accumulator slice stays L1-resident
  /// across the whole chain walk, which measures faster than a
  /// joint-major pass that streams every group's lanes through cache
  /// at each joint.  Each lane's values depend only on its own group's
  /// theta/dtheta/alpha slice, so results are bit-identical to calling
  /// evaluateLanes once per group over the same lane ranges.  Groups
  /// must occupy disjoint lane ranges within [0, lanes()).
  void evaluateGrouped(const Chain& chain, const LaneGroup* groups,
                       std::size_t group_count, const double* alpha,
                       bool clamp_to_limits);

  /// Per-candidate errors e_k; valid after evaluateLanes covered lane k.
  const std::vector<double>& errors() const { return errors_; }

  /// End-effector position of candidate k (widened to double for kF32).
  linalg::Vec3 position(std::size_t k) const;

  /// Copy candidate k's joint vector into `out` (resized if needed —
  /// allocation-free when the caller passes a dof-sized vector).
  void candidateInto(std::size_t k, linalg::VecX& out) const;

 private:
  /// Walk + error-reduce lanes [lo, hi) against `target` in slices of
  /// at most the backend's fused-lane budget (f64 path only).
  void slicedWalkF64(const Chain& chain, const linalg::VecX& theta,
                     const linalg::VecX& dtheta, const double* alpha,
                     const linalg::Vec3& target, bool clamp_to_limits,
                     std::size_t lo, std::size_t hi);
  void noteSlice(std::size_t lanes);

  Precision precision_;
  const SpecBackend* backend_;
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;  ///< lane stride (lanes_ padded to backend width)
  std::size_t dof_ = 0;
  /// High-water lanes per contiguous walk slice; relaxed atomic so the
  /// thread-pool split (concurrent evaluateLanes over disjoint ranges)
  /// can update it race-free.
  mutable std::atomic<std::size_t> max_walk_slice_lanes_{0};
  linalg::Mat34Batch acc_;     ///< f64 accumulator lanes
  linalg::Mat34BatchF acc_f_;  ///< f32 accumulator lanes
  std::vector<double> cand_;   ///< dof x stride candidate matrix (SoA)
  std::vector<double> ct_, st_;  ///< per-lane cos/sin scratch (f64)
  std::vector<float> ctf_, stf_;  ///< per-lane cos/sin scratch (f32)
  std::vector<double> errors_;
  // Per-joint DH trig constants, 4 per joint (cos/sin of the link
  // twist alpha, cos/sin of the fixed theta offset), precomputed by
  // reset() in each datapath's own precision so walks spend their trig
  // budget on candidates only.  Values match the inline computations
  // of the scalar chain walks bit-for-bit.
  std::vector<double> trig_d_;
  std::vector<float> trig_f_;
};

}  // namespace dadu::kin
