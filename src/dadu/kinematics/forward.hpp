// Forward kinematics: f(theta) = base * prod_i {i-1}T_i  (Eq. 10).
//
// Two entry points: the end-effector-only evaluation used inside every
// speculative search (the SSU/FKU workload), and the all-frames
// evaluation the Jacobian needs (the SPU's {1}T_i sequence).
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/mat4.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// End-effector pose for joint vector q.
linalg::Mat4 forwardKinematics(const Chain& chain, const linalg::VecX& q);

/// End-effector position only — the f(theta_k) of Algorithm 1 line 10.
linalg::Vec3 endEffectorPosition(const Chain& chain, const linalg::VecX& q);

/// Cumulative frames {0}T_i for i = 1..N (frames[i-1] is the pose of
/// joint i's distal frame in the base frame).  frames.back() equals
/// forwardKinematics().  The output vector is reused when its size
/// already matches (no per-iteration allocation on solver hot paths).
void linkFrames(const Chain& chain, const linalg::VecX& q,
                std::vector<linalg::Mat4>& frames);

/// Convenience allocating overload.
std::vector<linalg::Mat4> linkFrames(const Chain& chain,
                                     const linalg::VecX& q);

/// Number of floating-point multiply-adds one end-effector FK costs
/// (N 4x4 matrix multiplies + trig); the unit of the paper's Fig. 5b
/// "computation load" axis and of the platform timing models.
long long fkFlops(std::size_t dof);

}  // namespace dadu::kin
