// Robot description I/O: a minimal, dependency-free text format for
// serial chains, so downstream users can describe their manipulator in
// a file instead of C++ (the role URDF plays in ROS, scoped to what
// this library models: DH rows, joint types, limits).
//
// Format (line-oriented; '#' starts a comment; whitespace-separated):
//
//     name  left-arm
//     joint revolute  a=0.1 alpha=1.5708 d=0 theta=0 min=-2.9 max=2.9
//     joint prismatic a=0   alpha=0      d=0.05 min=0 max=0.3
//
// Unknown keys are rejected (typos should fail loudly, not silently
// produce a different robot).  min/max are optional for revolute
// joints (default unlimited) and required for prismatic joints.
#pragma once

#include <iosfwd>
#include <string>

#include "dadu/kinematics/chain.hpp"

namespace dadu::kin {

/// Parse a chain from a stream; throws std::runtime_error with a
/// line-numbered message on malformed input.
Chain loadChain(std::istream& in);

/// Parse a chain from a file path; throws on I/O or parse errors.
Chain loadChainFile(const std::string& path);

/// Serialise a chain in the same format (round-trips through
/// loadChain).
void saveChain(const Chain& chain, std::ostream& out);
void saveChainFile(const Chain& chain, const std::string& path);

}  // namespace dadu::kin
