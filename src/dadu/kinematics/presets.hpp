// Preset manipulators.
//
// The paper evaluates "multiple manipulators with various degrees of
// freedom: 12-DOF, 25-DOF, 50-DOF, 75-DOF and 100-DOF" without giving
// their geometry.  We use a serpentine chain (revolute joints with
// alternating +-90 degree link twists, equal link lengths) — the
// standard high-DOF test articulation (snake robots, tentacle
// manipulators) whose workspace is a ball and whose Jacobian stays
// generically full-rank, matching the paper's setup where every DOF
// count has solvable random targets.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dadu/kinematics/chain.hpp"

namespace dadu::kin {

/// Serpentine chain: `dof` revolute joints, link length `link_length`,
/// link twists alternating +pi/2 / -pi/2 so consecutive joints rotate
/// about orthogonal axes (full 3-D dexterity).  Reach = dof *
/// link_length.
Chain makeSerpentine(std::size_t dof, double link_length = 0.1);

/// Planar N-link arm (all motion in the base xy-plane).  FK has the
/// textbook closed form x = sum L cos(cumulative theta), y = sum L sin;
/// the test suite checks our generic FK against it.
Chain makePlanar(std::size_t dof, double link_length = 0.1);

/// A 6-DOF PUMA-560-class arm with the classic DH table and physical
/// joint limits; the realistic low-DOF example robot.
Chain makePuma560();

/// A 7-DOF KUKA LBR iiwa 14-class redundant arm (the modern cobot the
/// paper's KUKA ping-pong anecdote evokes), with physical limits.
Chain makeKukaIiwa();

/// A discretised continuum "tentacle": `segments` universal joints
/// (two orthogonal revolute axes sharing an origin) separated by
/// `segment_length` links — 2*segments DOF.  The kind of
/// hyper-redundant mechanism the paper's 44-DOF Valkyrie reference
/// points at.
Chain makeTentacle(std::size_t segments, double segment_length = 0.08);

/// Randomised serial chain: link lengths in [0.05, 0.15] m, twists in
/// {0, +-pi/2, +-pi/4}, occasional link offsets.  Deterministic per
/// `seed`; property tests sweep seeds.
Chain makeRandomChain(std::size_t dof, std::uint64_t seed);

/// The paper's evaluated DOF ladder {12, 25, 50, 75, 100}.
inline constexpr std::size_t kPaperDofLadder[] = {12, 25, 50, 75, 100};

}  // namespace dadu::kin
