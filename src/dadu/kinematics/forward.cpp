#include "dadu/kinematics/forward.hpp"

namespace dadu::kin {

linalg::Mat4 forwardKinematics(const Chain& chain, const linalg::VecX& q) {
  chain.requireSize(q);
  linalg::Mat4 t = chain.base();
  for (std::size_t i = 0; i < chain.dof(); ++i)
    t = t * chain.joint(i).transform(q[i]);
  return t;
}

linalg::Vec3 endEffectorPosition(const Chain& chain, const linalg::VecX& q) {
  return forwardKinematics(chain, q).position();
}

void linkFrames(const Chain& chain, const linalg::VecX& q,
                std::vector<linalg::Mat4>& frames) {
  chain.requireSize(q);
  frames.resize(chain.dof());
  linalg::Mat4 t = chain.base();
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    t = t * chain.joint(i).transform(q[i]);
    frames[i] = t;
  }
}

std::vector<linalg::Mat4> linkFrames(const Chain& chain,
                                     const linalg::VecX& q) {
  std::vector<linalg::Mat4> frames;
  linkFrames(chain, q, frames);
  return frames;
}

long long fkFlops(std::size_t dof) {
  // Per joint: one DH transform build (~2 trig approx 2*10 flops
  // equivalent + 6 mul) and one 4x4 multiply (64 mul + 48 add).
  constexpr long long kPerJoint = 20 + 6 + 64 + 48;
  return static_cast<long long>(dof) * kPerJoint;
}

}  // namespace dadu::kin
