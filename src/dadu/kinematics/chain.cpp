#include "dadu/kinematics/chain.hpp"

#include <cmath>
#include <stdexcept>

namespace dadu::kin {

Chain::Chain(std::vector<Joint> joints, std::string name, linalg::Mat4 base)
    : joints_(std::move(joints)), name_(std::move(name)), base_(base) {
  if (joints_.empty())
    throw std::invalid_argument("Chain '" + name_ + "': no joints");
  for (std::size_t i = 0; i < joints_.size(); ++i) {
    const DhParam& p = joints_[i].dh;
    if (!std::isfinite(p.a) || !std::isfinite(p.alpha) ||
        !std::isfinite(p.d) || !std::isfinite(p.theta))
      throw std::invalid_argument("Chain '" + name_ + "': non-finite DH row " +
                                  std::to_string(i));
    if (joints_[i].min > joints_[i].max)
      throw std::invalid_argument("Chain '" + name_ +
                                  "': inverted limits at joint " +
                                  std::to_string(i));
  }
}

double Chain::maxReach() const {
  double reach = 0.0;
  for (const Joint& j : joints_) {
    reach += std::abs(j.dh.a) + std::abs(j.dh.d);
    if (j.type == JointType::kPrismatic)
      reach += std::max(std::abs(j.min), std::abs(j.max));
  }
  return reach;
}

bool Chain::withinLimits(const linalg::VecX& q) const {
  requireSize(q);
  for (std::size_t i = 0; i < joints_.size(); ++i)
    if (q[i] < joints_[i].min || q[i] > joints_[i].max) return false;
  return true;
}

linalg::VecX Chain::clampToLimits(const linalg::VecX& q) const {
  requireSize(q);
  linalg::VecX out = q;
  for (std::size_t i = 0; i < joints_.size(); ++i)
    out[i] = joints_[i].clamp(out[i]);
  return out;
}

void Chain::requireSize(const linalg::VecX& q) const {
  if (q.size() != dof())
    throw std::invalid_argument("Chain '" + name_ + "': joint vector size " +
                                std::to_string(q.size()) + " != dof " +
                                std::to_string(dof()));
}

}  // namespace dadu::kin
