#include "dadu/kinematics/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dadu::kin {

Tree::Tree(std::vector<Node> nodes, std::vector<std::size_t> end_effectors,
           std::string name, linalg::Mat4 base)
    : nodes_(std::move(nodes)),
      end_effectors_(std::move(end_effectors)),
      name_(std::move(name)),
      base_(base) {
  if (nodes_.empty())
    throw std::invalid_argument("Tree '" + name_ + "': no nodes");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int p = nodes_[i].parent;
    if (p != -1 && (p < 0 || static_cast<std::size_t>(p) >= i))
      throw std::invalid_argument(
          "Tree '" + name_ + "': node " + std::to_string(i) +
          " has invalid parent " + std::to_string(p) +
          " (nodes must be in topological order)");
    const DhParam& dh = nodes_[i].joint.dh;
    if (!std::isfinite(dh.a) || !std::isfinite(dh.alpha) ||
        !std::isfinite(dh.d) || !std::isfinite(dh.theta))
      throw std::invalid_argument("Tree '" + name_ + "': non-finite DH row " +
                                  std::to_string(i));
  }
  if (end_effectors_.empty())
    throw std::invalid_argument("Tree '" + name_ + "': no end effectors");
  for (const std::size_t e : end_effectors_)
    if (e >= nodes_.size())
      throw std::invalid_argument("Tree '" + name_ +
                                  "': end effector index out of range");

  // Precompute ancestor paths.
  ancestors_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent != -1)
      ancestors_[i] = ancestors_[static_cast<std::size_t>(nodes_[i].parent)];
    ancestors_[i].push_back(i);
  }
}

bool Tree::isAncestor(std::size_t j, std::size_t node) const {
  const auto& path = ancestors_[node];
  return std::binary_search(path.begin(), path.end(), j);
}

void Tree::frames(const linalg::VecX& q, std::vector<linalg::Mat4>& out) const {
  requireSize(q);
  out.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const linalg::Mat4& parent =
        nodes_[i].parent == -1
            ? base_
            : out[static_cast<std::size_t>(nodes_[i].parent)];
    out[i] = parent * nodes_[i].joint.transform(q[i]);
  }
}

std::vector<linalg::Vec3> Tree::endEffectorPositions(
    const linalg::VecX& q) const {
  std::vector<linalg::Mat4> f;
  frames(q, f);
  std::vector<linalg::Vec3> out;
  out.reserve(end_effectors_.size());
  for (const std::size_t e : end_effectors_) out.push_back(f[e].position());
  return out;
}

linalg::MatX Tree::stackedJacobian(const linalg::VecX& q) const {
  requireSize(q);
  std::vector<linalg::Mat4> f;
  frames(q, f);

  linalg::MatX j(3 * end_effectors_.size(), nodes_.size());
  for (std::size_t block = 0; block < end_effectors_.size(); ++block) {
    const std::size_t ee_node = end_effectors_[block];
    const linalg::Vec3 ee = f[ee_node].position();
    for (const std::size_t ji : ancestors_[ee_node]) {
      const linalg::Mat4& prev =
          nodes_[ji].parent == -1
              ? base_
              : f[static_cast<std::size_t>(nodes_[ji].parent)];
      const linalg::Vec3 z = prev.rotation().col(2);
      linalg::Vec3 col;
      if (nodes_[ji].joint.type == JointType::kRevolute)
        col = z.cross(ee - prev.position());
      else
        col = z;
      j(3 * block + 0, ji) = col.x;
      j(3 * block + 1, ji) = col.y;
      j(3 * block + 2, ji) = col.z;
    }
  }
  return j;
}

double Tree::maxReach() const {
  std::vector<double> depth(nodes_.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double here = std::abs(nodes_[i].joint.dh.a) +
                        std::abs(nodes_[i].joint.dh.d);
    const double up =
        nodes_[i].parent == -1
            ? 0.0
            : depth[static_cast<std::size_t>(nodes_[i].parent)];
    depth[i] = up + here;
    best = std::max(best, depth[i]);
  }
  return best;
}

void Tree::requireSize(const linalg::VecX& q) const {
  if (q.size() != dof())
    throw std::invalid_argument("Tree '" + name_ + "': joint vector size " +
                                std::to_string(q.size()) + " != dof " +
                                std::to_string(dof()));
}

Tree makeHumanoidUpperBody(std::size_t torso_dof, std::size_t arm_dof,
                           double link_length) {
  constexpr double kPi = std::numbers::pi;
  std::vector<Tree::Node> nodes;
  nodes.reserve(torso_dof + 2 * arm_dof);

  // Torso: serpentine up from the base.
  int parent = -1;
  for (std::size_t i = 0; i < torso_dof; ++i) {
    const double twist = (i % 2 == 0) ? kPi / 2.0 : -kPi / 2.0;
    nodes.push_back({revolute({link_length, twist, 0.0, 0.0}), parent});
    parent = static_cast<int>(nodes.size()) - 1;
  }
  const int shoulder = parent;

  // Two arms branching from the last torso joint, offset sideways via
  // the first arm joint's link offset.
  std::vector<std::size_t> wrists;
  for (int side = 0; side < 2; ++side) {
    int arm_parent = shoulder;
    for (std::size_t i = 0; i < arm_dof; ++i) {
      DhParam dh{link_length, (i % 2 == 0) ? kPi / 2.0 : -kPi / 2.0, 0.0,
                 0.0};
      if (i == 0) dh.d = (side == 0 ? 1.0 : -1.0) * 2.0 * link_length;
      nodes.push_back({revolute(dh), arm_parent});
      arm_parent = static_cast<int>(nodes.size()) - 1;
    }
    wrists.push_back(nodes.size() - 1);
  }

  return Tree(std::move(nodes), std::move(wrists),
              "humanoid-" + std::to_string(torso_dof + 2 * arm_dof) + "dof");
}

Tree makeSerpentineTree(std::size_t dof, double link_length) {
  constexpr double kPi = std::numbers::pi;
  std::vector<Tree::Node> nodes;
  nodes.reserve(dof);
  for (std::size_t i = 0; i < dof; ++i) {
    const double twist = (i % 2 == 0) ? kPi / 2.0 : -kPi / 2.0;
    nodes.push_back({revolute({link_length, twist, 0.0, 0.0}),
                     static_cast<int>(i) - 1});
  }
  return Tree(std::move(nodes), {dof - 1},
              "serpentine-tree-" + std::to_string(dof) + "dof");
}

}  // namespace dadu::kin
