#include "dadu/kinematics/presets.hpp"

#include <numbers>
#include <string>
#include <vector>

namespace dadu::kin {
namespace {

constexpr double kPi = std::numbers::pi;

// Minimal inline SplitMix64 so presets do not depend on the workload
// library (which depends on kinematics).
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

}  // namespace

Chain makeSerpentine(std::size_t dof, double link_length) {
  std::vector<Joint> joints;
  joints.reserve(dof);
  for (std::size_t i = 0; i < dof; ++i) {
    const double twist = (i % 2 == 0) ? kPi / 2.0 : -kPi / 2.0;
    joints.push_back(revolute({link_length, twist, 0.0, 0.0}));
  }
  return Chain(std::move(joints),
               "serpentine-" + std::to_string(dof) + "dof");
}

Chain makePlanar(std::size_t dof, double link_length) {
  std::vector<Joint> joints;
  joints.reserve(dof);
  for (std::size_t i = 0; i < dof; ++i)
    joints.push_back(revolute({link_length, 0.0, 0.0, 0.0}));
  return Chain(std::move(joints), "planar-" + std::to_string(dof) + "dof");
}

Chain makePuma560() {
  // Classic PUMA 560 DH table (Craig parameters adapted to the distal
  // convention used by dhTransformRevolute), lengths in metres.
  std::vector<Joint> joints = {
      revolute({0.0, kPi / 2.0, 0.0, 0.0}, -2.79, 2.79),
      revolute({0.4318, 0.0, 0.0, 0.0}, -3.93, 0.79),
      revolute({0.0203, -kPi / 2.0, 0.15005, 0.0}, -0.79, 3.93),
      revolute({0.0, kPi / 2.0, 0.4318, 0.0}, -1.92, 2.97),
      revolute({0.0, -kPi / 2.0, 0.0, 0.0}, -1.75, 1.75),
      revolute({0.0, 0.0, 0.0563, 0.0}, -4.64, 4.64),
  };
  return Chain(std::move(joints), "puma560");
}

Chain makeKukaIiwa() {
  // LBR iiwa 14 R820 DH table (distal convention), lengths in metres,
  // limits from the datasheet.
  const double d1 = 0.340, d3 = 0.400, d5 = 0.400, d7 = 0.126;
  const double deg = kPi / 180.0;
  std::vector<Joint> joints = {
      revolute({0.0, -kPi / 2.0, d1, 0.0}, -170 * deg, 170 * deg),
      revolute({0.0, kPi / 2.0, 0.0, 0.0}, -120 * deg, 120 * deg),
      revolute({0.0, kPi / 2.0, d3, 0.0}, -170 * deg, 170 * deg),
      revolute({0.0, -kPi / 2.0, 0.0, 0.0}, -120 * deg, 120 * deg),
      revolute({0.0, -kPi / 2.0, d5, 0.0}, -170 * deg, 170 * deg),
      revolute({0.0, kPi / 2.0, 0.0, 0.0}, -120 * deg, 120 * deg),
      revolute({0.0, 0.0, d7, 0.0}, -175 * deg, 175 * deg),
  };
  return Chain(std::move(joints), "kuka-iiwa14");
}

Chain makeTentacle(std::size_t segments, double segment_length) {
  // Each segment: a 2-DOF universal joint (pitch then yaw about
  // orthogonal axes at the same origin) followed by a rigid link.
  std::vector<Joint> joints;
  joints.reserve(2 * segments);
  for (std::size_t s = 0; s < segments; ++s) {
    joints.push_back(revolute({0.0, kPi / 2.0, 0.0, 0.0}));
    joints.push_back(revolute({segment_length, -kPi / 2.0, 0.0, 0.0}));
  }
  return Chain(std::move(joints),
               "tentacle-" + std::to_string(segments) + "seg");
}

Chain makeRandomChain(std::size_t dof, std::uint64_t seed) {
  SplitMix64 rng{seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL};
  constexpr double kTwists[] = {0.0, kPi / 2.0, -kPi / 2.0, kPi / 4.0,
                                -kPi / 4.0};
  std::vector<Joint> joints;
  joints.reserve(dof);
  for (std::size_t i = 0; i < dof; ++i) {
    DhParam p;
    p.a = rng.uniform(0.05, 0.15);
    p.alpha = kTwists[rng.below(5)];
    // ~20% of joints get a link offset to break planar degeneracies.
    p.d = rng.below(5) == 0 ? rng.uniform(-0.05, 0.05) : 0.0;
    p.theta = 0.0;
    joints.push_back(revolute(p));
  }
  return Chain(std::move(joints),
               "random-" + std::to_string(dof) + "dof-s" +
                   std::to_string(seed));
}

}  // namespace dadu::kin
