// Reference batched chain walk, shared by the scalar backend, the f32
// datapath, and the ragged-tail handling of the wide backends.
//
// These templates are the original autovectorizable SoA kernel: batch
// index innermost, unit-stride lane loops, strict IEEE arithmetic in
// scalar program order (no reassociation, no FMA — translation units
// including this header compile with -ffp-contract=off so results are
// identical whatever ISA the compiler autovectorizes them to).  Every
// other backend is measured, and ULP-bounded, against this code.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/mat34_batch.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin::detail {

// Advance the K accumulator transforms across one joint: A_k := A_k *
// {i-1}T_i(q_k), with the batch index innermost so every statement in
// the lane loop is a unit-stride multiply-add the compiler can
// vectorize.  The per-entry expressions reproduce dhTransform{Revolute,
// Prismatic} times the scalar 4x4 product term-for-term (left-to-right
// accumulation, row 3 contributions dropped — they are exact zeros and
// an exact +a(i,3)), so lane results match the scalar chain walk
// bit-for-bit up to the sign of zero rotation entries.
template <typename T, bool kPrismatic>
void advanceJoint(linalg::Mat34BatchT<T>& acc, const T* ct, const T* st,
                  T ca, T sa, T a_len, T d_fixed, const double* q,
                  std::size_t lo, std::size_t hi) {
  T* a00 = acc.row(0, 0); T* a01 = acc.row(0, 1); T* a02 = acc.row(0, 2); T* a03 = acc.row(0, 3);
  T* a10 = acc.row(1, 0); T* a11 = acc.row(1, 1); T* a12 = acc.row(1, 2); T* a13 = acc.row(1, 3);
  T* a20 = acc.row(2, 0); T* a21 = acc.row(2, 1); T* a22 = acc.row(2, 2); T* a23 = acc.row(2, 3);
  for (std::size_t k = lo; k < hi; ++k) {
    const T c = ct[k], s = st[k];
    // Column entries of {i-1}T_i at lane k (the dhTransform* values).
    const T b01 = -s * ca, b11 = c * ca;
    const T b02 = s * sa, b12 = -c * sa;
    const T b03 = a_len * c, b13 = a_len * s;
    T dl;
    if constexpr (kPrismatic)
      dl = d_fixed + static_cast<T>(q[k]);
    else
      dl = d_fixed;

    const T o00 = a00[k], o01 = a01[k], o02 = a02[k], o03 = a03[k];
    const T o10 = a10[k], o11 = a11[k], o12 = a12[k], o13 = a13[k];
    const T o20 = a20[k], o21 = a21[k], o22 = a22[k], o23 = a23[k];

    a00[k] = o00 * c + o01 * s;
    a01[k] = o00 * b01 + o01 * b11 + o02 * sa;
    a02[k] = o00 * b02 + o01 * b12 + o02 * ca;
    a03[k] = o00 * b03 + o01 * b13 + o02 * dl + o03;

    a10[k] = o10 * c + o11 * s;
    a11[k] = o10 * b01 + o11 * b11 + o12 * sa;
    a12[k] = o10 * b02 + o11 * b12 + o12 * ca;
    a13[k] = o10 * b03 + o11 * b13 + o12 * dl + o13;

    a20[k] = o20 * c + o21 * s;
    a21[k] = o20 * b01 + o21 * b11 + o22 * sa;
    a22[k] = o20 * b02 + o21 * b12 + o22 * ca;
    a23[k] = o20 * b03 + o21 * b13 + o22 * dl + o23;
  }
}

// One full chain walk over lanes [lo, hi): candidate formation, trig,
// and the per-joint batched advance.  T = double reproduces the Mat4
// path; T = float reproduces the forward_f32 path (candidates stay
// double, every FK intermediate is float).  `trig` is the per-joint DH
// constant table BatchedForward::reset() precomputed: 4 entries per
// joint — cos/sin of the link twist alpha, cos/sin of the fixed theta
// offset.  `stride` is the padded lane stride of the candidate matrix.
template <typename T>
void walkLanes(const Chain& chain, linalg::Mat34BatchT<T>& acc, T* ct, T* st,
               double* cand, std::size_t stride, const T* trig,
               const linalg::VecX& theta, const linalg::VecX& dtheta,
               const double* alpha, bool clamp_to_limits, std::size_t lo,
               std::size_t hi) {
  acc.setLanes(chain.base(), lo, hi);
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const Joint& joint = chain.joint(i);
    const DhParam& p = joint.dh;
    double* q = cand + i * stride;

    // Candidate joint values theta_i + alpha_k * dtheta_i, clamped the
    // same way Joint::clamp does.
    const double ti = theta[i], di = dtheta[i];
    for (std::size_t k = lo; k < hi; ++k) q[k] = ti + alpha[k] * di;
    if (clamp_to_limits) {
      const double qmin = joint.min, qmax = joint.max;
      for (std::size_t k = lo; k < hi; ++k) {
        if (q[k] < qmin) q[k] = qmin;
        if (q[k] > qmax) q[k] = qmax;
      }
    }

    const T ca = trig[4 * i + 0];
    const T sa = trig[4 * i + 1];
    const T a_len = static_cast<T>(p.a);
    const T d_fix = static_cast<T>(p.d);
    if (joint.type == JointType::kRevolute) {
      const T t0 = static_cast<T>(p.theta);
      for (std::size_t k = lo; k < hi; ++k) {
        const T qk = t0 + static_cast<T>(q[k]);
        ct[k] = std::cos(qk);
        st[k] = std::sin(qk);
      }
      advanceJoint<T, false>(acc, ct, st, ca, sa, a_len, d_fix, q, lo, hi);
    } else {
      // Prismatic: the rotation block is fixed; only d varies per lane.
      const T c0 = trig[4 * i + 2];
      const T s0 = trig[4 * i + 3];
      for (std::size_t k = lo; k < hi; ++k) {
        ct[k] = c0;
        st[k] = s0;
      }
      advanceJoint<T, true>(acc, ct, st, ca, sa, a_len, d_fix, q, lo, hi);
    }
  }
}

// e_k = ||target - x_k||, accumulated x, y, z like Vec3::norm so the
// scalar path's errors are reproduced exactly.  f32 positions are
// widened to double first, as endEffectorPositionF32 does.
template <typename T>
void reduceErrors(const linalg::Mat34BatchT<T>& acc, double* err,
                  const linalg::Vec3& target, std::size_t lo,
                  std::size_t hi) {
  const double tx = target.x, ty = target.y, tz = target.z;
  const T* px = acc.row(0, 3);
  const T* py = acc.row(1, 3);
  const T* pz = acc.row(2, 3);
  for (std::size_t k = lo; k < hi; ++k) {
    const double dx = tx - static_cast<double>(px[k]);
    const double dy = ty - static_cast<double>(py[k]);
    const double dz = tz - static_cast<double>(pz[k]);
    err[k] = std::sqrt(dx * dx + dy * dy + dz * dz);
  }
}

}  // namespace dadu::kin::detail
