// AVX-512 speculation backend: 8 f64 lanes per vector over the
// lane-innermost Mat34Batch SoA layout.
//
// Compiled with -mavx512f in this translation unit only (see
// kinematics/CMakeLists.txt) and selected strictly behind a CPUID
// check, so the binary stays runnable on baseline x86-64.  The kernel
// body is the shared walk_wide.hpp template — same scalar operation
// order, mask-register blends instead of AVX2's blendv.
#include "dadu/kinematics/backends/spec_backend.hpp"

#if defined(DADU_SPEC_BACKEND_AVX512)

#include <immintrin.h>

#include "dadu/kinematics/backends/walk_wide.hpp"

namespace dadu::kin {
namespace {

/// 8-lane f64 vector ops for walk_wide.hpp.
struct V8 {
  static constexpr std::size_t width = 8;
  using reg = __m512d;
  static reg load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg set1(double v) { return _mm512_set1_pd(v); }
  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_pd(a, b); }
  static reg sqrt(reg a) { return _mm512_sqrt_pd(a); }
  static reg neg(reg a) {
    // Exact sign flip via integer xor (_mm512_xor_pd needs AVX512DQ;
    // this TU only assumes AVX512F).
    const __m512i sign = _mm512_set1_epi64(0x8000000000000000LL);
    return _mm512_castsi512_pd(
        _mm512_xor_si512(_mm512_castpd_si512(a), sign));
  }
  /// q < lim ? lim : q — ordered compare; NaN lanes keep q, matching
  /// the scalar if-chain.
  static reg clampBelow(reg q, reg lim) {
    const __mmask8 m = _mm512_cmp_pd_mask(q, lim, _CMP_LT_OQ);
    return _mm512_mask_blend_pd(m, q, lim);
  }
  /// q > lim ? lim : q.
  static reg clampAbove(reg q, reg lim) {
    const __mmask8 m = _mm512_cmp_pd_mask(q, lim, _CMP_GT_OQ);
    return _mm512_mask_blend_pd(m, q, lim);
  }
};

class Avx512SpecBackend final : public SpecBackend {
 public:
  const char* name() const override { return "avx512"; }

  SpecBackendCaps caps() const override {
    SpecBackendCaps caps;
    caps.lane_multiple = V8::width;
    caps.max_fused_lanes = 256;
    caps.alignment = 64;
    caps.max_ulp_error = 0;  // scalar op order, no FMA: bit-identical
    return caps;
  }

  void walkLanes(const Chain& chain, const SpecLaneBlock& ws,
                 const linalg::VecX& theta, const linalg::VecX& dtheta,
                 const double* alpha, bool clamp_to_limits, std::size_t lo,
                 std::size_t hi) const override {
    detail::walkLanesWide<V8>(chain, *ws.acc, ws.ct, ws.st, ws.cand,
                              ws.stride, ws.trig, theta, dtheta, alpha,
                              clamp_to_limits, lo, hi);
  }

  void reduceErrors(const SpecLaneBlock& ws, const linalg::Vec3& target,
                    std::size_t lo, std::size_t hi) const override {
    detail::reduceErrorsWide<V8>(*ws.acc, ws.errors, target, lo, hi);
  }
};

}  // namespace

const SpecBackend* avx512SpecBackend() {
  static const Avx512SpecBackend backend;
  return &backend;
}

}  // namespace dadu::kin

#else  // !DADU_SPEC_BACKEND_AVX512

namespace dadu::kin {
const SpecBackend* avx512SpecBackend() { return nullptr; }
}  // namespace dadu::kin

#endif
