// AVX2 speculation backend: 4 f64 lanes per vector over the
// lane-innermost Mat34Batch SoA layout.
//
// This translation unit is the only place in the library compiled with
// -mavx2 (see kinematics/CMakeLists.txt); everything it exports is
// reached through the SpecBackend vtable after a CPUID check, so the
// binary as a whole stays runnable on baseline x86-64.  When the
// compiler cannot target AVX2 (or the target is not x86) the factory
// returns nullptr and the registry simply never lists the backend.
#include "dadu/kinematics/backends/spec_backend.hpp"

#if defined(DADU_SPEC_BACKEND_AVX2)

#include <immintrin.h>

#include "dadu/kinematics/backends/walk_wide.hpp"

namespace dadu::kin {
namespace {

/// 4-lane f64 vector ops for walk_wide.hpp.  Unaligned loads/stores by
/// design: lane ranges start at arbitrary offsets (group boundaries,
/// pool chunks) and penalty-free unaligned access is exactly what the
/// padded, 32-byte-aligned rows buy.
struct V4 {
  static constexpr std::size_t width = 4;
  using reg = __m256d;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg set1(double v) { return _mm256_set1_pd(v); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg sqrt(reg a) { return _mm256_sqrt_pd(a); }
  static reg neg(reg a) {
    return _mm256_xor_pd(a, _mm256_set1_pd(-0.0));  // exact sign flip
  }
  /// q < lim ? lim : q — ordered compare, so NaN lanes keep q exactly
  /// like the scalar if-chain.
  static reg clampBelow(reg q, reg lim) {
    const reg m = _mm256_cmp_pd(q, lim, _CMP_LT_OQ);
    return _mm256_blendv_pd(q, lim, m);
  }
  /// q > lim ? lim : q.
  static reg clampAbove(reg q, reg lim) {
    const reg m = _mm256_cmp_pd(q, lim, _CMP_GT_OQ);
    return _mm256_blendv_pd(q, lim, m);
  }
};

class Avx2SpecBackend final : public SpecBackend {
 public:
  const char* name() const override { return "avx2"; }

  SpecBackendCaps caps() const override {
    SpecBackendCaps caps;
    caps.lane_multiple = V4::width;
    caps.max_fused_lanes = 256;
    caps.alignment = 32;
    caps.max_ulp_error = 0;  // scalar op order, no FMA: bit-identical
    return caps;
  }

  void walkLanes(const Chain& chain, const SpecLaneBlock& ws,
                 const linalg::VecX& theta, const linalg::VecX& dtheta,
                 const double* alpha, bool clamp_to_limits, std::size_t lo,
                 std::size_t hi) const override {
    detail::walkLanesWide<V4>(chain, *ws.acc, ws.ct, ws.st, ws.cand,
                              ws.stride, ws.trig, theta, dtheta, alpha,
                              clamp_to_limits, lo, hi);
  }

  void reduceErrors(const SpecLaneBlock& ws, const linalg::Vec3& target,
                    std::size_t lo, std::size_t hi) const override {
    detail::reduceErrorsWide<V4>(*ws.acc, ws.errors, target, lo, hi);
  }
};

}  // namespace

const SpecBackend* avx2SpecBackend() {
  static const Avx2SpecBackend backend;
  return &backend;
}

}  // namespace dadu::kin

#else  // !DADU_SPEC_BACKEND_AVX2

namespace dadu::kin {
const SpecBackend* avx2SpecBackend() { return nullptr; }
}  // namespace dadu::kin

#endif
