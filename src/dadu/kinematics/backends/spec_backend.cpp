// Speculation-backend registry and runtime CPU dispatch.
//
// Selection order: DADU_SPEC_BACKEND environment override (if it names
// a backend this binary carries AND this CPU can run — otherwise a
// one-time stderr warning and normal dispatch), else the widest
// CPUID-supported backend.  The choice is made once and cached;
// setSpecBackendOverride() (the CLI --spec-backend flag) replaces it
// for BatchedForward instances constructed afterwards.
#include "dadu/kinematics/backends/spec_backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dadu::kin {
namespace {

bool cpuSupports(const char* backend_name) {
#if defined(__x86_64__) || defined(__i386__)
  if (std::strcmp(backend_name, "avx2") == 0)
    return __builtin_cpu_supports("avx2");
  if (std::strcmp(backend_name, "avx512") == 0)
    return __builtin_cpu_supports("avx512f");
#else
  if (std::strcmp(backend_name, "avx2") == 0 ||
      std::strcmp(backend_name, "avx512") == 0)
    return false;
#endif
  return std::strcmp(backend_name, "scalar") == 0;
}

const SpecBackend* pickDispatched() {
  if (const char* env = std::getenv("DADU_SPEC_BACKEND")) {
    if (const SpecBackend* forced = specBackendByName(env);
        forced != nullptr && specBackendSupported(*forced))
      return forced;
    std::fprintf(stderr,
                 "dadu: DADU_SPEC_BACKEND='%s' unknown, compiled out, or "
                 "unsupported by this CPU; falling back to dispatch\n",
                 env);
  }
  for (const SpecBackend* backend : allSpecBackends())
    if (specBackendSupported(*backend)) return backend;
  return &scalarSpecBackend();
}

/// Cached dispatch choice.  Initialised lazily; the benign first-call
/// race resolves to the same pointer on every thread.
std::atomic<const SpecBackend*>& activeSlot() {
  static std::atomic<const SpecBackend*> slot{nullptr};
  return slot;
}

}  // namespace

std::vector<const SpecBackend*> allSpecBackends() {
  std::vector<const SpecBackend*> backends;
  if (const SpecBackend* b = avx512SpecBackend()) backends.push_back(b);
  if (const SpecBackend* b = avx2SpecBackend()) backends.push_back(b);
  backends.push_back(&scalarSpecBackend());
  return backends;
}

const SpecBackend* specBackendByName(std::string_view name) {
  for (const SpecBackend* backend : allSpecBackends())
    if (name == backend->name()) return backend;
  return nullptr;
}

bool specBackendSupported(const SpecBackend& backend) {
  return cpuSupports(backend.name());
}

const SpecBackend& dispatchedSpecBackend() {
  const SpecBackend* backend = activeSlot().load(std::memory_order_acquire);
  if (backend == nullptr) {
    backend = pickDispatched();
    activeSlot().store(backend, std::memory_order_release);
  }
  return *backend;
}

bool setSpecBackendOverride(std::string_view name) {
  const SpecBackend* backend = specBackendByName(name);
  if (backend == nullptr || !specBackendSupported(*backend)) return false;
  activeSlot().store(backend, std::memory_order_release);
  return true;
}

std::string activeSpecBackendName() {
  return dispatchedSpecBackend().name();
}

}  // namespace dadu::kin
