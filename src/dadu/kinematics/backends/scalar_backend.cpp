// The scalar/autovec reference backend: the original batched SoA
// kernel behind the SpecBackend seam.  Compiled at -O3 with baseline
// ISA flags so the compiler's autovectorizer does what it did before
// the seam existed — this is the parity reference and the perf
// baseline every wide backend must beat.
#include "dadu/kinematics/backends/spec_backend.hpp"
#include "dadu/kinematics/backends/walk_ref.hpp"

namespace dadu::kin {
namespace {

class ScalarSpecBackend final : public SpecBackend {
 public:
  const char* name() const override { return "scalar"; }

  SpecBackendCaps caps() const override {
    SpecBackendCaps caps;
    caps.lane_multiple = 1;
    // The fused sweep measured fastest around 256 total SoA lanes on
    // one core (~20% slower by 1024, purely cache pressure).
    caps.max_fused_lanes = 256;
    caps.alignment = alignof(double);
    caps.max_ulp_error = 0;  // it *is* the reference
    return caps;
  }

  void walkLanes(const Chain& chain, const SpecLaneBlock& ws,
                 const linalg::VecX& theta, const linalg::VecX& dtheta,
                 const double* alpha, bool clamp_to_limits, std::size_t lo,
                 std::size_t hi) const override {
    detail::walkLanes<double>(chain, *ws.acc, ws.ct, ws.st, ws.cand,
                              ws.stride, ws.trig, theta, dtheta, alpha,
                              clamp_to_limits, lo, hi);
  }

  void reduceErrors(const SpecLaneBlock& ws, const linalg::Vec3& target,
                    std::size_t lo, std::size_t hi) const override {
    detail::reduceErrors<double>(*ws.acc, ws.errors, target, lo, hi);
  }
};

}  // namespace

const SpecBackend& scalarSpecBackend() {
  static const ScalarSpecBackend backend;
  return backend;
}

}  // namespace dadu::kin
