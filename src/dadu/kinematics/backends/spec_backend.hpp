// Speculation-backend seam: pluggable kernels for the batched FK walk.
//
// kin::BatchedForward owns the SoA workspace (candidates, accumulator
// lanes, trig tables, errors) and the *semantics* of a speculative
// sweep; a SpecBackend owns the *arithmetic* — candidate formation,
// the per-joint trig-table transform compose, and the per-lane error
// reduction over a contiguous lane range.  Three implementations ship
// today: the scalar/autovec reference walk, an AVX2 kernel (4 f64
// lanes per vector) and an AVX-512 kernel (8 lanes).  The seam is
// deliberately wide enough for a GPU or IKAcc-model implementation to
// slot in later: a backend advertises its capabilities (preferred lane
// multiple, fused-lane budget, alignment, parity bound) and the caller
// shapes batches to fit, never the other way round.
//
// Parity contract: a backend's results must match the scalar reference
// within caps().max_ulp_error ULPs per double.  The current wide
// kernels replicate the scalar operation order exactly — scalar libm
// sin/cos, mul/add without FMA contraction, IEEE vector sqrt — so
// their documented bound is 0: bit-identical.  A future backend that
// fuses multiplies or vectorizes the trig may advertise a nonzero
// bound; the parity suite reads the bound off the caps and enforces
// it at every tested DOF x K point.
//
// Dispatch: dispatchedSpecBackend() picks the widest backend the CPU
// supports (CPUID, checked once), overridable with the
// DADU_SPEC_BACKEND environment variable (scalar|avx2|avx512) or
// programmatically via setSpecBackendOverride() (the CLI's
// --spec-backend flag).  Backends compiled out (non-x86 build, old
// compiler) or unsupported by the running CPU are never selected, so
// one binary runs everywhere.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/mat34_batch.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// What a backend wants from its callers.  BatchedForward pads lane
/// strides and sizes fused batches from these numbers, so a new
/// backend tunes the whole stack (solver chunking included) without
/// touching solver code.
struct SpecBackendCaps {
  /// Preferred lane-count multiple (the vector width in f64 lanes).
  /// Workspaces pad their lane stride to this so every row starts a
  /// whole vector; lane *ranges* need not be multiples — kernels
  /// handle ragged tails internally.
  std::size_t lane_multiple = 1;
  /// Cache-residency budget: the largest contiguous lane range worth
  /// walking in one slice.  BatchedForward splits larger ranges into
  /// slices of at most this many lanes (each slice's accumulator
  /// stays L1-resident across the whole chain walk).
  std::size_t max_fused_lanes = 256;
  /// Preferred byte alignment of lane-row base pointers.  Advisory:
  /// kernels use unaligned loads, so correctness never depends on it.
  std::size_t alignment = alignof(double);
  /// Documented parity bound vs the scalar reference, in ULPs per
  /// produced double (0 = bit-identical).
  unsigned max_ulp_error = 0;
};

/// Borrowed view of BatchedForward's f64 workspace for one sweep.
/// All arrays use the same padded lane stride; a kernel may only read
/// or write lanes inside the range it was handed.
struct SpecLaneBlock {
  linalg::Mat34Batch* acc = nullptr;  ///< 12 rows of `stride` lanes
  double* cand = nullptr;             ///< dof x stride candidate matrix
  double* ct = nullptr;               ///< per-lane cos scratch
  double* st = nullptr;               ///< per-lane sin scratch
  const double* trig = nullptr;       ///< 4/joint: cos/sin alpha, cos/sin theta0
  double* errors = nullptr;           ///< per-lane error output
  std::size_t stride = 0;             ///< lane stride of cand rows
};

/// One speculation kernel.  Implementations are stateless and
/// thread-safe: concurrent calls over disjoint lane ranges of the same
/// workspace are race-free (that is how the thread-pool solver splits
/// a sweep).
class SpecBackend {
 public:
  virtual ~SpecBackend() = default;

  virtual const char* name() const = 0;
  virtual SpecBackendCaps caps() const = 0;

  /// Candidate formation + batched chain walk over lanes [lo, hi):
  /// cand[i][k] = theta[i] + alpha[k] * dtheta[i] (clamped to joint
  /// limits when asked), then the accumulator lanes advance joint by
  /// joint using the precomputed trig table.
  virtual void walkLanes(const Chain& chain, const SpecLaneBlock& ws,
                         const linalg::VecX& theta,
                         const linalg::VecX& dtheta, const double* alpha,
                         bool clamp_to_limits, std::size_t lo,
                         std::size_t hi) const = 0;

  /// errors[k] = ||target - position(k)|| for lanes [lo, hi),
  /// accumulated x, y, z exactly like the scalar path.
  virtual void reduceErrors(const SpecLaneBlock& ws,
                            const linalg::Vec3& target, std::size_t lo,
                            std::size_t hi) const = 0;
};

/// The scalar/autovec reference backend (always available).
const SpecBackend& scalarSpecBackend();

/// Internal: per-ISA factories.  Return nullptr when the backend was
/// compiled out (non-x86 target or compiler without the ISA flags).
const SpecBackend* avx2SpecBackend();
const SpecBackend* avx512SpecBackend();

/// Every backend compiled into this binary, widest first.  Inclusion
/// does not imply the running CPU can execute it — check
/// specBackendSupported() before selecting one by hand.
std::vector<const SpecBackend*> allSpecBackends();

/// Backend by registry name ("scalar", "avx2", "avx512"); nullptr if
/// unknown or compiled out.
const SpecBackend* specBackendByName(std::string_view name);

/// True when the running CPU can execute `backend` (CPUID check).
bool specBackendSupported(const SpecBackend& backend);

/// The process-wide dispatched backend: chosen once — DADU_SPEC_BACKEND
/// override if set and runnable (else a one-time warning and CPU
/// dispatch), otherwise the widest CPU-supported backend.  New
/// BatchedForward instances bind to this at construction.
const SpecBackend& dispatchedSpecBackend();

/// Force the dispatched backend by name (CLI --spec-backend).  Returns
/// false (and changes nothing) when the name is unknown, compiled out,
/// or unsupported by this CPU.  Affects BatchedForward instances
/// constructed afterwards.
bool setSpecBackendOverride(std::string_view name);

/// Name of the backend dispatchedSpecBackend() currently returns.
std::string activeSpecBackendName();

}  // namespace dadu::kin
