// Explicit-SIMD batched chain walk, templated over a vector abstraction.
//
// One kernel body serves every wide ISA: the backend translation unit
// defines a vector wrapper V (width, load/store, broadcast, mul/add/
// sub/neg, IEEE sqrt, ordered-compare blends) with its own -m flags,
// instantiates these templates, and gets a kernel whose *operation
// order is exactly the scalar reference* — each lane performs the same
// IEEE doubles in the same sequence, just `V::width` lanes per
// instruction.  Multiplies and adds stay separate (no FMA contraction;
// the TU compiles with -ffp-contract=off as a belt-and-braces), sin and
// cos go through scalar libm into the ct/st scratch exactly as the
// reference does, and vector sqrt is correctly rounded — so the wide
// backends are bit-identical to the scalar walk, which is the
// max_ulp_error = 0 parity bound their caps advertise.
//
// Lane ranges need not be multiples of V::width: the vectorized middle
// covers [lo, lo + floor((hi-lo)/width)*width) and the ragged tail
// falls through to the reference templates in walk_ref.hpp.
#pragma once

#include <cmath>
#include <cstddef>

#include "dadu/kinematics/backends/walk_ref.hpp"
#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/mat34_batch.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin::detail {

// The per-joint transform compose, V::width lanes per step.  Mirrors
// advanceJoint<double, kPrismatic> statement for statement.
template <typename V, bool kPrismatic>
void advanceJointWide(linalg::Mat34Batch& acc, const double* ct,
                      const double* st, double ca, double sa, double a_len,
                      double d_fixed, const double* q, std::size_t lo,
                      std::size_t hi) {
  double* a00 = acc.row(0, 0); double* a01 = acc.row(0, 1); double* a02 = acc.row(0, 2); double* a03 = acc.row(0, 3);
  double* a10 = acc.row(1, 0); double* a11 = acc.row(1, 1); double* a12 = acc.row(1, 2); double* a13 = acc.row(1, 3);
  double* a20 = acc.row(2, 0); double* a21 = acc.row(2, 1); double* a22 = acc.row(2, 2); double* a23 = acc.row(2, 3);

  const auto ca_v = V::set1(ca);
  const auto sa_v = V::set1(sa);
  const auto al_v = V::set1(a_len);
  const auto df_v = V::set1(d_fixed);

  std::size_t k = lo;
  for (; k + V::width <= hi; k += V::width) {
    const auto c = V::load(ct + k);
    const auto s = V::load(st + k);
    // Column entries of {i-1}T_i: b01 = -s*ca, b11 = c*ca, b02 = s*sa,
    // b12 = -c*sa, b03 = a_len*c, b13 = a_len*s — scalar order kept.
    const auto b01 = V::mul(V::neg(s), ca_v);
    const auto b11 = V::mul(c, ca_v);
    const auto b02 = V::mul(s, sa_v);
    const auto b12 = V::mul(V::neg(c), sa_v);
    const auto b03 = V::mul(al_v, c);
    const auto b13 = V::mul(al_v, s);
    const auto dl = kPrismatic ? V::add(df_v, V::load(q + k)) : df_v;

    // One output row at a time keeps the live register set small
    // enough for 16-register ISAs (AVX2) without spilling the b*.
    const auto row = [&](double* r0, double* r1, double* r2, double* r3) {
      const auto o0 = V::load(r0 + k);
      const auto o1 = V::load(r1 + k);
      const auto o2 = V::load(r2 + k);
      const auto o3 = V::load(r3 + k);
      V::store(r0 + k, V::add(V::mul(o0, c), V::mul(o1, s)));
      V::store(r1 + k, V::add(V::add(V::mul(o0, b01), V::mul(o1, b11)),
                              V::mul(o2, sa_v)));
      V::store(r2 + k, V::add(V::add(V::mul(o0, b02), V::mul(o1, b12)),
                              V::mul(o2, ca_v)));
      V::store(r3 + k, V::add(V::add(V::add(V::mul(o0, b03), V::mul(o1, b13)),
                                     V::mul(o2, dl)),
                              o3));
    };
    row(a00, a01, a02, a03);
    row(a10, a11, a12, a13);
    row(a20, a21, a22, a23);
  }
  if (k < hi)
    advanceJoint<double, kPrismatic>(acc, ct, st, ca, sa, a_len, d_fixed, q,
                                     k, hi);
}

// One full wide chain walk over lanes [lo, hi): vectorized candidate
// formation and clamp, scalar libm trig (identical values to the
// reference), wide per-joint advance.
template <typename V>
void walkLanesWide(const Chain& chain, linalg::Mat34Batch& acc, double* ct,
                   double* st, double* cand, std::size_t stride,
                   const double* trig, const linalg::VecX& theta,
                   const linalg::VecX& dtheta, const double* alpha,
                   bool clamp_to_limits, std::size_t lo, std::size_t hi) {
  acc.setLanes(chain.base(), lo, hi);
  const std::size_t main_end = lo + ((hi - lo) / V::width) * V::width;
  for (std::size_t i = 0; i < chain.dof(); ++i) {
    const Joint& joint = chain.joint(i);
    const DhParam& p = joint.dh;
    double* q = cand + i * stride;

    // q[k] = theta_i + alpha[k] * dtheta_i (mul first, then add — the
    // scalar expression order), clamped with ordered compares so NaN
    // propagation matches the scalar if-chains.
    const double ti = theta[i], di = dtheta[i];
    {
      const auto ti_v = V::set1(ti);
      const auto di_v = V::set1(di);
      std::size_t k = lo;
      for (; k < main_end; k += V::width)
        V::store(q + k, V::add(ti_v, V::mul(V::load(alpha + k), di_v)));
      for (; k < hi; ++k) q[k] = ti + alpha[k] * di;
    }
    if (clamp_to_limits) {
      const double qmin = joint.min, qmax = joint.max;
      const auto lo_v = V::set1(qmin);
      const auto hi_v = V::set1(qmax);
      std::size_t k = lo;
      for (; k < main_end; k += V::width) {
        auto v = V::load(q + k);
        v = V::clampBelow(v, lo_v);  // q < qmin ? qmin : q
        v = V::clampAbove(v, hi_v);  // q > qmax ? qmax : q
        V::store(q + k, v);
      }
      for (; k < hi; ++k) {
        if (q[k] < qmin) q[k] = qmin;
        if (q[k] > qmax) q[k] = qmax;
      }
    }

    const double ca = trig[4 * i + 0];
    const double sa = trig[4 * i + 1];
    if (joint.type == JointType::kRevolute) {
      const double t0 = p.theta;
      for (std::size_t k = lo; k < hi; ++k) {
        const double qk = t0 + q[k];
        ct[k] = std::cos(qk);
        st[k] = std::sin(qk);
      }
      advanceJointWide<V, false>(acc, ct, st, ca, sa, p.a, p.d, q, lo, hi);
    } else {
      const double c0 = trig[4 * i + 2];
      const double s0 = trig[4 * i + 3];
      for (std::size_t k = lo; k < hi; ++k) {
        ct[k] = c0;
        st[k] = s0;
      }
      advanceJointWide<V, true>(acc, ct, st, ca, sa, p.a, p.d, q, lo, hi);
    }
  }
}

// errors[k] = sqrt(dx*dx + dy*dy + dz*dz), V::width lanes at a time,
// same association order as the scalar reduction; vector sqrt is
// IEEE-correctly rounded, so results are bit-identical.
template <typename V>
void reduceErrorsWide(const linalg::Mat34Batch& acc, double* err,
                      const linalg::Vec3& target, std::size_t lo,
                      std::size_t hi) {
  const double* px = acc.row(0, 3);
  const double* py = acc.row(1, 3);
  const double* pz = acc.row(2, 3);
  const auto tx = V::set1(target.x);
  const auto ty = V::set1(target.y);
  const auto tz = V::set1(target.z);
  std::size_t k = lo;
  for (; k + V::width <= hi; k += V::width) {
    const auto dx = V::sub(tx, V::load(px + k));
    const auto dy = V::sub(ty, V::load(py + k));
    const auto dz = V::sub(tz, V::load(pz + k));
    const auto d2 = V::add(V::add(V::mul(dx, dx), V::mul(dy, dy)),
                           V::mul(dz, dz));
    V::store(err + k, V::sqrt(d2));
  }
  if (k < hi) reduceErrors<double>(acc, err, target, k, hi);
}

}  // namespace dadu::kin::detail
