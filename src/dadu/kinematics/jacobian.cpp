#include "dadu/kinematics/jacobian.hpp"

#include "dadu/kinematics/forward.hpp"

namespace dadu::kin {

void positionJacobian(const Chain& chain, const linalg::VecX& q,
                      linalg::MatX& j, std::vector<linalg::Mat4>& frames,
                      linalg::Vec3& ee) {
  chain.requireSize(q);
  const std::size_t n = chain.dof();
  if (j.rows() != 3 || j.cols() != n) j = linalg::MatX(3, n);

  linkFrames(chain, q, frames);
  ee = frames.back().position();

  for (std::size_t i = 0; i < n; ++i) {
    // Axis and origin of joint i are those of the *previous* frame
    // (the joint rotates about z_{i-1}): base frame for i = 0.
    const linalg::Mat4& prev = i == 0 ? chain.base() : frames[i - 1];
    const linalg::Vec3 z = prev.rotation().col(2);
    if (chain.joint(i).type == JointType::kRevolute) {
      const linalg::Vec3 p = prev.position();
      j.setCol3(i, z.cross(ee - p));
    } else {
      j.setCol3(i, z);
    }
  }
}

linalg::MatX positionJacobian(const Chain& chain, const linalg::VecX& q) {
  linalg::MatX j;
  std::vector<linalg::Mat4> frames;
  linalg::Vec3 ee;
  positionJacobian(chain, q, j, frames, ee);
  return j;
}

linalg::MatX finiteDifferenceJacobian(const Chain& chain,
                                      const linalg::VecX& q, double h) {
  chain.requireSize(q);
  const std::size_t n = chain.dof();
  linalg::MatX j(3, n);
  linalg::VecX qp = q;
  for (std::size_t i = 0; i < n; ++i) {
    const double orig = qp[i];
    qp[i] = orig + h;
    const linalg::Vec3 fp = endEffectorPosition(chain, qp);
    qp[i] = orig - h;
    const linalg::Vec3 fm = endEffectorPosition(chain, qp);
    qp[i] = orig;
    j.setCol3(i, (fp - fm) / (2.0 * h));
  }
  return j;
}

long long jacobianFlops(std::size_t dof) {
  // Per joint: DH transform (~26), 4x4 multiply (112), cross product
  // (9), J_i J_i^T E accumulation (~18) — the four pipeline stages of
  // the paper's Fig. 3.
  constexpr long long kPerJoint = 26 + 112 + 9 + 18;
  return static_cast<long long>(dof) * kPerJoint;
}

}  // namespace dadu::kin
