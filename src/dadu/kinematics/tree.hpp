// Tree-structured robots with multiple end effectors.
//
// The paper's motivating robots are humanoids (NASA Valkyrie, 44 DOF):
// kinematic *trees* — a torso chain branching into limbs — with one
// task target per limb.  The related-work section notes that CCD-class
// methods "are just used in the manipulators with one end-effector";
// the Jacobian family generalises cleanly by stacking one 3-row block
// per end effector, and Quick-IK's speculative search carries over
// verbatim (see QuickIkTreeSolver).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dadu/kinematics/joint.hpp"
#include "dadu/linalg/mat4.hpp"
#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::kin {

/// An open kinematic tree.  Nodes are stored in topological order
/// (every parent index is smaller than its child's); joint i's
/// variable is q[i].
class Tree {
 public:
  struct Node {
    Joint joint;
    int parent = -1;  ///< -1 = attached to the base frame
  };

  /// `end_effectors` are node indices whose distal frames carry task
  /// targets (typically leaves).  Throws std::invalid_argument on
  /// malformed topology (forward parent references, bad indices,
  /// empty tree, no end effectors).
  Tree(std::vector<Node> nodes, std::vector<std::size_t> end_effectors,
       std::string name = "tree",
       linalg::Mat4 base = linalg::Mat4::identity());

  std::size_t dof() const { return nodes_.size(); }
  std::size_t endEffectorCount() const { return end_effectors_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::size_t>& endEffectors() const {
    return end_effectors_;
  }
  const std::string& name() const { return name_; }
  const linalg::Mat4& base() const { return base_; }

  /// True iff joint `j` lies on the path from the base to node `node`
  /// (inclusive) — i.e. moving joint j moves node's frame.
  bool isAncestor(std::size_t j, std::size_t node) const;

  /// Global frames of every node at configuration q (output reused).
  void frames(const linalg::VecX& q, std::vector<linalg::Mat4>& out) const;

  /// Positions of all end effectors at q.
  std::vector<linalg::Vec3> endEffectorPositions(const linalg::VecX& q) const;

  /// Stacked position Jacobian: 3*E rows (block e = end effector e),
  /// N columns.  Entries for joints outside an end effector's ancestor
  /// path are zero.
  linalg::MatX stackedJacobian(const linalg::VecX& q) const;

  /// Sum of |a| + |d| along the longest root-to-leaf path: outer reach
  /// bound used by workload scaling.
  double maxReach() const;

  void requireSize(const linalg::VecX& q) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::size_t> end_effectors_;
  std::string name_;
  linalg::Mat4 base_;
  // ancestors_[n] = sorted list of joints on the base->n path.
  std::vector<std::vector<std::size_t>> ancestors_;
};

/// A humanoid upper body: `torso_dof` serpentine torso joints
/// branching into two `arm_dof`-joint serpentine arms; end effectors =
/// both wrists.  Total DOF = torso_dof + 2 * arm_dof (defaults: 4 + 2*7
/// = 18).
Tree makeHumanoidUpperBody(std::size_t torso_dof = 4,
                           std::size_t arm_dof = 7,
                           double link_length = 0.08);

/// A single-branch tree equivalent to makeSerpentine(dof) — the
/// degenerate case tests use to cross-check against Chain kinematics.
Tree makeSerpentineTree(std::size_t dof, double link_length = 0.1);

}  // namespace dadu::kin
