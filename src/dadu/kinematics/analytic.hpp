// Closed-form IK for the planar 2R arm — the "algebraic and geometric
// methods" family of the paper's related work (usable only for
// special manipulators with finite, fixed solutions), implemented both
// as a baseline of that family and as an exact oracle the numeric
// solvers are tested against.
#pragma once

#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::kin {

/// Joint-angle solutions (elbow-down / elbow-up) of a planar 2R arm
/// with link lengths l1, l2 for an in-plane target (z ignored).
/// Returns 0 solutions out of reach, 1 at the boundary (within `tol`),
/// 2 in the interior.
std::vector<linalg::VecX> planar2RInverse(double l1, double l2,
                                          const linalg::Vec3& target,
                                          double tol = 1e-12);

/// Convenience overload taking a makePlanar(2, L)-style chain;
/// throws std::invalid_argument if the chain is not a planar 2R arm.
std::vector<linalg::VecX> planar2RInverse(const Chain& chain,
                                          const linalg::Vec3& target,
                                          double tol = 1e-12);

}  // namespace dadu::kin
