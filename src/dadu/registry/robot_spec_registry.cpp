#include "dadu/registry/robot_spec_registry.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/robot_io.hpp"
#include "dadu/solvers/factory.hpp"

namespace dadu::registry {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

/// A metric-friendly default name for a bare chain spec:
/// "serpentine:12" -> "serpentine_12", "robots/arm.txt" -> "robots_arm.txt".
std::string nameFromSpec(const std::string& spec) {
  std::string name = spec;
  for (char& c : name)
    if (c == ':' || c == '/') c = '_';
  return name;
}

}  // namespace

kin::Chain resolveChainSpec(const std::string& spec) {
  // preset:arg:arg syntax first; anything unrecognised is a file path.
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ':')) parts.push_back(item);

  const auto num = [&](std::size_t i) {
    return static_cast<std::size_t>(std::stoul(parts.at(i)));
  };
  if (parts.size() == 2 && parts[0] == "serpentine")
    return kin::makeSerpentine(num(1));
  if (parts.size() == 2 && parts[0] == "planar") return kin::makePlanar(num(1));
  if (parts.size() == 1 && parts[0] == "puma") return kin::makePuma560();
  if (parts.size() == 1 && parts[0] == "iiwa") return kin::makeKukaIiwa();
  if (parts.size() == 2 && parts[0] == "tentacle")
    return kin::makeTentacle(num(1));
  if (parts.size() == 3 && parts[0] == "random")
    return kin::makeRandomChain(num(1), num(2));
  if (parts.size() > 1)
    throw std::invalid_argument("unknown robot spec '" + spec + "'");
  return kin::loadChainFile(spec);
}

const RobotSpec& RobotSpecRegistry::add(RobotSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("robot spec needs a non-empty name");
  if (by_id_.count(spec.id))
    throw std::invalid_argument("duplicate robot spec id " +
                                std::to_string(spec.id));
  if (by_name_.count(spec.name))
    throw std::invalid_argument("duplicate robot spec name '" + spec.name +
                                "'");
  const std::size_t index = specs_.size();
  by_id_.emplace(spec.id, index);
  by_name_.emplace(spec.name, index);
  if (spec.id >= next_id_) next_id_ = spec.id + 1;
  specs_.push_back(std::move(spec));
  return specs_.back();
}

const RobotSpec& RobotSpecRegistry::addBinding(const std::string& binding,
                                               const std::string& solver,
                                               const ik::SolveOptions& options) {
  const std::string text = trim(binding);
  if (text.empty())
    throw std::invalid_argument("empty robot binding");
  RobotSpec spec;
  spec.solver = solver;
  spec.options = options;
  const auto eq = text.find('=');
  if (eq == std::string::npos) {
    spec.name = nameFromSpec(text);
    spec.chain_spec = text;
  } else {
    spec.name = trim(text.substr(0, eq));
    spec.chain_spec = trim(text.substr(eq + 1));
    if (spec.name.empty() || spec.chain_spec.empty())
      throw std::invalid_argument("bad robot binding '" + binding +
                                  "' (want name=chainspec)");
  }
  spec.id = next_id_;
  spec.chain = resolveChainSpec(spec.chain_spec);
  return add(std::move(spec));
}

std::size_t RobotSpecRegistry::loadFile(const std::string& path,
                                        const std::string& solver,
                                        const ik::SolveOptions& options) {
  std::ifstream file(path);
  if (!file)
    throw std::runtime_error("cannot open robot spec file '" + path + "'");
  std::size_t added = 0;
  std::string line;
  while (std::getline(file, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    addBinding(line, solver, options);
    ++added;
  }
  return added;
}

const RobotSpec* RobotSpecRegistry::find(std::uint32_t id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &specs_[it->second];
}

const RobotSpec* RobotSpecRegistry::findByName(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &specs_[it->second];
}

service::SolverFactory RobotSpecRegistry::makeFactory(const RobotSpec& spec) {
  if (spec.factory) return spec.factory;
  return [solver = spec.solver, chain = spec.chain, options = spec.options] {
    return ik::makeSolver(solver, chain, options);
  };
}

}  // namespace dadu::registry
