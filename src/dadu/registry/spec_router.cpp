#include "dadu/registry/spec_router.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace dadu::registry {
namespace {

/// Per-spec metric names ride the spec name; keep them in the exporter
/// alphabet so Prometheus and JSON renderings agree on the series name.
std::string metricSafe(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

SpecRouter::SpecRouter(const RobotSpecRegistry& registry, RouterConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (registry_.empty())
    throw std::invalid_argument("SpecRouter: registry has no robot specs");

  // Policy default when nothing is configured anywhere: split hardware
  // concurrency evenly so N specs cost the same thread budget one spec
  // used to.
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t even_share =
      std::max<std::size_t>(hw / registry_.size(), 1);

  lanes_.reserve(registry_.size());
  for (const RobotSpec& spec : registry_.specs()) {
    service::ServiceConfig lane_config = config_.base;
    lane_config.workers = spec.workers        ? spec.workers
                          : config_.workers_per_spec
                              ? config_.workers_per_spec
                          : config_.base.workers ? config_.base.workers
                                                 : even_share;
    Lane lane;
    lane.spec = &spec;
    lane.service = std::make_unique<service::IkService>(
        RobotSpecRegistry::makeFactory(spec), lane_config);
    lane_by_id_.emplace(spec.id, lanes_.size());
    lanes_.push_back(std::move(lane));
  }
}

SpecRouter::~SpecRouter() { stop(service::IkService::Drain::kDrainPending); }

service::IkService* SpecRouter::serviceFor(std::uint32_t spec_id) {
  const auto it = lane_by_id_.find(spec_id);
  return it == lane_by_id_.end() ? nullptr : lanes_[it->second].service.get();
}

const RobotSpec* SpecRouter::specFor(std::uint32_t spec_id) const {
  const auto it = lane_by_id_.find(spec_id);
  return it == lane_by_id_.end() ? nullptr : lanes_[it->second].spec;
}

bool SpecRouter::submit(std::uint32_t spec_id, service::Request request,
                        service::IkService::Completion done) {
  service::IkService* lane = serviceFor(spec_id);
  if (!lane) return false;
  lane->submit(std::move(request), std::move(done));
  return true;
}

void SpecRouter::stop(service::IkService::Drain mode) {
  for (Lane& lane : lanes_) lane.service->stop(mode);
}

std::size_t SpecRouter::totalWorkers() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.service->workerCount();
  return total;
}

service::ServiceStats SpecRouter::aggregatedStats() const {
  service::ServiceStats total;
  for (const Lane& lane : lanes_) {
    const service::ServiceStats s = lane.service->stats();
    total.submitted += s.submitted;
    total.rejected_queue_full += s.rejected_queue_full;
    total.rejected_shutdown += s.rejected_shutdown;
    total.rejected_overloaded += s.rejected_overloaded;
    total.shed_low_priority += s.shed_low_priority;
    total.deadline_expired += s.deadline_expired;
    total.solved += s.solved;
    total.converged += s.converged;
    total.timed_out += s.timed_out;
    total.internal_errors += s.internal_errors;
    total.total_iterations += s.total_iterations;
    total.total_fk_evaluations += s.total_fk_evaluations;
    total.total_speculation_load += s.total_speculation_load;
    total.total_queue_ms += s.total_queue_ms;
    total.total_solve_ms += s.total_solve_ms;
    total.batches += s.batches;
    total.batched_lanes += s.batched_lanes;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_inserts += s.cache_inserts;
    total.cache_evictions += s.cache_evictions;
    obs::mergeInto(total.queue_hist, s.queue_hist);
    obs::mergeInto(total.solve_hist, s.solve_hist);
    obs::mergeInto(total.e2e_hist, s.e2e_hist);
    obs::mergeInto(total.batch_occupancy_hist, s.batch_occupancy_hist);
    total.breaker.trips += s.breaker.trips;
    total.breaker.probes_issued += s.breaker.probes_issued;
    // Fleet breaker "state" = the worst lane's (any Open lane matters
    // more than the Closed majority).
    total.breaker.state = std::max(total.breaker.state, s.breaker.state);
    if (total.spec_backend.empty()) total.spec_backend = s.spec_backend;
  }
  return total;
}

std::vector<SpecLaneStats> SpecRouter::perSpecStats() const {
  std::vector<SpecLaneStats> out;
  out.reserve(lanes_.size());
  for (const Lane& lane : lanes_) {
    SpecLaneStats s;
    s.spec = lane.spec;
    s.stats = lane.service->stats();
    s.queue_depth = lane.service->queueDepth();
    s.workers = lane.service->workerCount();
    out.push_back(std::move(s));
  }
  return out;
}

obs::MetricsSnapshot SpecRouter::metrics() const {
  obs::MetricsSnapshot snap = service::toMetricsSnapshot(aggregatedStats());
  snap.gauges.push_back({"dadu_registry_specs",
                         static_cast<double>(lanes_.size()), "specs"});
  for (const SpecLaneStats& lane : perSpecStats()) {
    const std::string prefix = "dadu_spec_" + metricSafe(lane.spec->name) + "_";
    snap.counters.push_back({prefix + "requests", lane.stats.submitted});
    snap.counters.push_back({prefix + "solved", lane.stats.solved});
    snap.counters.push_back({prefix + "cache_hits", lane.stats.cache_hits});
    snap.counters.push_back({prefix + "cache_misses", lane.stats.cache_misses});
    snap.gauges.push_back(
        {prefix + "cache_hit_rate", lane.stats.cacheHitRate(), "ratio"});
    snap.gauges.push_back({prefix + "batch_mean_occupancy",
                           lane.stats.meanBatchOccupancy(), "requests"});
    snap.gauges.push_back({prefix + "queue_depth",
                           static_cast<double>(lane.queue_depth), "requests"});
    snap.gauges.push_back(
        {prefix + "workers", static_cast<double>(lane.workers), "threads"});
    snap.infos.push_back({prefix + "chain", lane.spec->chain_spec});
  }
  return snap;
}

}  // namespace dadu::registry
