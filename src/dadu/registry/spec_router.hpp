// SpecRouter: per-spec serving lanes behind one submit() seam.
//
// One router owns one IkService per registered robot spec.  That
// single structural decision buys every multi-robot invariant at once:
//
//   per-spec queues        each lane has its own bounded MPMC queue, so
//                          one robot's backlog cannot starve another's
//                          admission;
//   per-spec worker pools  sized by the router-level policy (see
//                          RouterConfig) with per-spec overrides;
//   per-spec seed caches   cache keys are workspace positions, which
//                          are meaningless across chains — a hit in
//                          spec A can never seed spec B because the
//                          caches are physically separate;
//   spec-pure batches      a worker's popMany burst drains one lane's
//                          queue, so a fused solveMany always shares
//                          one chain (the PR 6 invariant), and routing
//                          is bit-identical to running each spec in its
//                          own single-spec server: same queue, same
//                          cache, same batch coalescing, same solver.
//
// The front-ends (IkServer, SimServer) route a wire request by its
// spec_id through submit(); an unknown id returns false and the caller
// answers kUnknownSpec.  Lanes run under whatever clock/executor seam
// RouterConfig::base carries, so the whole router works inside the
// deterministic simulation unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dadu/obs/export.hpp"
#include "dadu/registry/robot_spec_registry.hpp"
#include "dadu/service/ik_service.hpp"

namespace dadu::registry {

/// Registry-level resource policy: how big each spec's lane is.
struct RouterConfig {
  /// Template for every lane's ServiceConfig (queue capacity, cache,
  /// batching, breaker, stat shards, clock/executor seams).  The
  /// `workers` field is the per-spec default; see workers_per_spec.
  service::ServiceConfig base;
  /// Workers per spec: RobotSpec::workers wins when set, then this,
  /// then base.workers; all zero = hardware concurrency divided evenly
  /// across specs (min 1 per spec).
  std::size_t workers_per_spec = 0;
};

/// One spec's stats, labelled by its spec (for per-spec dashboards).
struct SpecLaneStats {
  const RobotSpec* spec = nullptr;
  service::ServiceStats stats;
  std::size_t queue_depth = 0;
  std::size_t workers = 0;
};

class SpecRouter {
 public:
  /// Builds (and starts) one IkService per spec in `registry`, which
  /// must be non-empty, outlive the router, and not be mutated while
  /// the router exists.  Throws std::invalid_argument on an empty
  /// registry.
  explicit SpecRouter(const RobotSpecRegistry& registry,
                      RouterConfig config = {});
  ~SpecRouter();  ///< stop(Drain::kDrainPending)

  SpecRouter(const SpecRouter&) = delete;
  SpecRouter& operator=(const SpecRouter&) = delete;

  /// The lane serving `spec_id` (nullptr = unknown spec).
  service::IkService* serviceFor(std::uint32_t spec_id);
  const RobotSpec* specFor(std::uint32_t spec_id) const;

  /// Route one request to its spec's lane.  Returns false (without
  /// invoking `done`) when the spec is unknown — the caller owns the
  /// error answer.  Admission, deadlines and batching are the lane
  /// service's, identical to a single-spec deployment.
  bool submit(std::uint32_t spec_id, service::Request request,
              service::IkService::Completion done);

  /// Stop every lane (same Drain semantics as IkService::stop).
  /// Idempotent.
  void stop(service::IkService::Drain mode =
                service::IkService::Drain::kDrainPending);

  std::size_t specCount() const { return lanes_.size(); }
  std::size_t totalWorkers() const;
  const RobotSpecRegistry& registry() const { return registry_; }

  /// Fleet view: every counter summed across lanes, histograms merged
  /// bucket-wise (all lanes share base's ladder, so the merge is
  /// exact).  `submitted == accounted()` holds for the aggregate iff it
  /// holds per lane.
  service::ServiceStats aggregatedStats() const;
  std::vector<SpecLaneStats> perSpecStats() const;

  /// Aggregate dadu_service_* snapshot plus per-spec series named
  /// `dadu_spec_<name>_*` (requests, solved, cache hit rate, batch
  /// occupancy, queue depth, workers) — the exporter model has no
  /// labels, so the spec name rides in the metric name.
  obs::MetricsSnapshot metrics() const;

 private:
  struct Lane {
    const RobotSpec* spec = nullptr;
    std::unique_ptr<service::IkService> service;
  };

  const RobotSpecRegistry& registry_;
  RouterConfig config_;
  std::vector<Lane> lanes_;
  std::unordered_map<std::uint32_t, std::size_t> lane_by_id_;
};

}  // namespace dadu::registry
