// dadu_registry: the multi-robot spec registry.
//
// The wire protocol has stamped a `spec_id` on every request since v1,
// but the serving stack could only reject ids other than the single
// chain it was built around (ServerConfig::robot_spec_id).  The
// registry is the missing table: spec_id -> {kinematic chain, joint
// limits (carried by the chain), solver factory, solver options,
// worker-pool sizing} — everything a front-end needs to route a
// request to the right per-spec serving lane.
//
// Specs come from three places:
//   - add():        a fully-built RobotSpec (tests, sim harness — this
//                   is also where a custom SolverFactory plugs in, e.g.
//                   the sim's ModelSolver);
//   - addBinding(): a CLI-style "name=chainspec" binding (`serve
//                   --robot left=iiwa --robot snake=serpentine:50`);
//   - loadFile():   a spec file of one binding per line.
//
// Ids are dense and assigned in registration order (0, 1, 2, ...)
// unless add() supplies one explicitly; names and ids must both be
// unique — a duplicate registration throws instead of silently
// shadowing a robot.  The registry is build-then-read: register every
// spec, hand it to a SpecRouter/server, and do not mutate it afterwards
// (find() returns pointers into the registry's storage).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dadu/kinematics/chain.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/solvers/ik_solver.hpp"

namespace dadu::registry {

/// Everything the serving stack knows about one robot model.
struct RobotSpec {
  std::uint32_t id = 0;     ///< the wire `spec_id` routed on
  std::string name;         ///< unique; used for per-spec metric names
  std::string chain_spec;   ///< source text, e.g. "serpentine:12"
  kin::Chain chain;         ///< geometry + joint limits
  std::string solver = "quick-ik";  ///< ik::makeSolver name
  ik::SolveOptions options;
  /// Worker-pool size for this spec (0 = the router-level policy).
  std::size_t workers = 0;
  /// Optional factory override.  When set it wins over
  /// (solver, chain, options) — the seam the deterministic sim uses to
  /// put a ModelSolver behind a spec.  Must be safe to invoke
  /// concurrently (one call per worker thread).
  service::SolverFactory factory;
};

/// Parse a robot chain spec ("serpentine:N", "planar:N", "puma",
/// "iiwa", "tentacle:N", "random:N:S", or a robot-description file
/// path) into a chain.  Throws std::invalid_argument on a malformed
/// preset spec.  This is the single chain-spec grammar; the CLI's
/// resolveRobot() delegates here.
kin::Chain resolveChainSpec(const std::string& spec);

class RobotSpecRegistry {
 public:
  /// Register a fully-built spec.  Throws std::invalid_argument on a
  /// duplicate id or name (or an empty name).  Returns the stored spec.
  const RobotSpec& add(RobotSpec spec);

  /// Register from a "name=chainspec" binding; a bare "chainspec" gets
  /// a name derived from the spec text (':' -> '_', '/' -> '_').  The
  /// id is the next unused dense id; `solver`/`options` become the
  /// spec's solver policy (the CLI forwards its --solver/--max-iter
  /// flags here so one policy covers every binding).  Throws on parse
  /// failure or duplicate registration.
  const RobotSpec& addBinding(const std::string& binding,
                              const std::string& solver = "quick-ik",
                              const ik::SolveOptions& options = {});

  /// Register every binding in a spec file (one "name=chainspec" per
  /// line; blank lines and '#' comments ignored).  Returns the number
  /// of specs added.  Throws on an unreadable file or any bad binding.
  std::size_t loadFile(const std::string& path,
                       const std::string& solver = "quick-ik",
                       const ik::SolveOptions& options = {});

  const RobotSpec* find(std::uint32_t id) const;
  const RobotSpec* findByName(const std::string& name) const;
  std::size_t size() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }
  const std::vector<RobotSpec>& specs() const { return specs_; }

  /// The per-worker solver factory for `spec`: the explicit factory
  /// override when set, otherwise ik::makeSolver(spec.solver,
  /// spec.chain, spec.options) captured by value (the returned factory
  /// does not reference the registry or the spec).
  static service::SolverFactory makeFactory(const RobotSpec& spec);

 private:
  std::vector<RobotSpec> specs_;
  std::unordered_map<std::uint32_t, std::size_t> by_id_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::uint32_t next_id_ = 0;
};

}  // namespace dadu::registry
