// Command-line interface to the library (the `dadu` binary): robot
// inspection, forward kinematics, IK solving and accelerator
// estimation from the shell.  Implemented as a library function so the
// test suite can drive it with captured streams; tools/dadu_main.cpp
// is the thin entry point.
//
// Usage:
//   dadu info  --robot <spec>
//   dadu fk    --robot <spec> --joints q1,q2,...
//   dadu solve --robot <spec> --target x,y,z [--solver name]
//              [--accuracy a] [--max-iter n] [--speculations k] [--seed-config q1,q2,...]
//   dadu accel --robot <spec> --target x,y,z [--ssus n] [--speculations k]
//   dadu serve-bench --robot <spec> [--requests n] [--clusters c]
//              [--workers w] [--queue-capacity n] [--rate r] [--deadline ms]
//              [--cache on|off] [--solver name] [--max-iter n]
//
// Robot specs: "serpentine:<dof>", "planar:<dof>", "puma", "iiwa",
// "tentacle:<segments>", "random:<dof>:<seed>", or a path to a robot
// description file (see dadu/kinematics/robot_io.hpp).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "dadu/kinematics/chain.hpp"

namespace dadu::cli {

/// Resolve a robot spec (preset string or file path) to a chain;
/// throws std::invalid_argument / std::runtime_error on bad specs.
kin::Chain resolveRobot(const std::string& spec);

/// Parse "0.1,0.2,-0.3" into a vector; throws on malformed input.
std::vector<double> parseNumberList(const std::string& csv);

/// Run the CLI.  Returns the process exit code; all output goes to the
/// provided streams (no global state).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace dadu::cli
