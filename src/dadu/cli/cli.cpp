#include "dadu/cli/cli.hpp"

#include <csignal>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dadu/ikacc/accelerator.hpp"
#include "dadu/kinematics/backends/spec_backend.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/robot_io.hpp"
#include "dadu/kinematics/jacobian_full.hpp"
#include "dadu/kinematics/workspace.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/net/ik_server.hpp"
#include "dadu/net/net_stats.hpp"
#include "dadu/obs/export.hpp"
#include "dadu/platform/timer.hpp"
#include "dadu/registry/robot_spec_registry.hpp"
#include "dadu/registry/spec_router.hpp"
#include "dadu/service/ik_service.hpp"
#include "dadu/sim/scenario.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/pose_solvers.hpp"
#include "dadu/workload/targets.hpp"

namespace dadu::cli {
namespace {

constexpr const char* kUsage =
    "usage: dadu <info|fk|solve|accel> --robot <spec> [options]\n"
    "  info  --robot <spec>\n"
    "  fk    --robot <spec> --joints q1,q2,...\n"
    "  solve --robot <spec> --target x,y,z [--solver name] [--accuracy a]\n"
    "        [--max-iter n] [--speculations k] [--seed-config q1,...]\n"
    "  accel --robot <spec> --target x,y,z [--ssus n] [--speculations k]\n"
    "  pose  --robot <spec> --target x,y,z --rpy r,p,y [--accuracy a]\n"
    "        [--angular-accuracy a]\n"
    "  serve-bench --robot <spec> [--requests n] [--clusters c] [--workers w]\n"
    "        [--queue-capacity n] [--rate req-per-s] [--deadline ms]\n"
    "        [--cache on|off] [--solver name] [--max-iter n]\n"
    "        [--max-batch n] [--batch-wait-us us]\n"
    "        [--stats-out FILE] [--stats-format auto|prom|json]\n"
    "        [--breaker-queue-depth n] [--breaker-p99-ms x]\n"
    "        [--shed-queue-depth n]\n"
    "  serve --robot [name=]<spec> [--robot ...] --port <p> [--address a]\n"
    "        [--robots-file FILE] [--workers w-per-spec]\n"
    "        [--queue-capacity n] [--solver name] [--max-iter n]\n"
    "        [--cache on|off] [--max-connections n] [--idle-timeout ms]\n"
    "        [--max-batch n] [--batch-wait-us us]\n"
    "        [--stats-format text|prom|json] [--max-runtime-ms n]\n"
    "        [--breaker-queue-depth n] [--breaker-p99-ms x]\n"
    "        [--shed-queue-depth n]\n"
    "        (repeat --robot to host several specs; wire spec_id 0,1,...\n"
    "        in registration order, each spec behind its own queue,\n"
    "        workers and seed cache)\n"
    "  stats --robot <spec> [--format text|prom|json] [serve-bench options]\n"
    "  sim   [--scenario baseline|burst|chaos|overload|multispec] [--seed n]\n"
    "        [--requests n] [--clients n] [--workers n] [--max-batch n]\n"
    "        [--batch-wait-us us] [--specs n] [--trace-out FILE]\n"
    "        [--trace-keep n]\n"
    "robot specs: serpentine:<dof> planar:<dof> puma iiwa tentacle:<seg>\n"
    "             random:<dof>:<seed> or a robot-description file path\n"
    "global options (accepted after any command):\n"
    "  --spec-backend scalar|avx2|avx512   force the batched-FK\n"
    "        speculation backend (default: CPUID dispatch; the\n"
    "        DADU_SPEC_BACKEND env var does the same)\n";

/// "--key value" pairs after the subcommand.
std::map<std::string, std::string> parseOptions(
    const std::vector<std::string>& args, std::size_t first) {
  std::map<std::string, std::string> opts;
  for (std::size_t i = first; i < args.size(); i += 2) {
    const std::string& key = args[i];
    if (key.size() < 3 || key.substr(0, 2) != "--")
      throw std::invalid_argument("expected --option, got '" + key + "'");
    if (i + 1 >= args.size())
      throw std::invalid_argument("option '" + key + "' needs a value");
    opts[key.substr(2)] = args[i + 1];
  }
  return opts;
}

std::string require(const std::map<std::string, std::string>& opts,
                    const std::string& key) {
  const auto it = opts.find(key);
  if (it == opts.end())
    throw std::invalid_argument("missing required option --" + key);
  return it->second;
}

std::string optional(const std::map<std::string, std::string>& opts,
                     const std::string& key, const std::string& def) {
  const auto it = opts.find(key);
  return it == opts.end() ? def : it->second;
}

linalg::Vec3 parseTarget(const std::string& csv) {
  const auto v = parseNumberList(csv);
  if (v.size() != 3)
    throw std::invalid_argument("--target needs exactly 3 numbers");
  return {v[0], v[1], v[2]};
}

linalg::VecX parseConfig(const kin::Chain& chain, const std::string& csv) {
  const auto v = parseNumberList(csv);
  if (v.size() != chain.dof())
    throw std::invalid_argument("joint list has " + std::to_string(v.size()) +
                                " values, robot has " +
                                std::to_string(chain.dof()) + " DOF");
  return linalg::VecX(v);
}

int cmdInfo(const kin::Chain& chain, std::ostream& out) {
  out << "name:        " << chain.name() << '\n';
  out << "dof:         " << chain.dof() << '\n';
  out << "max reach:   " << chain.maxReach() << " m\n";
  int limited = 0;
  for (const auto& j : chain.joints())
    if (j.hasLimits()) ++limited;
  out << "limited:     " << limited << "/" << chain.dof() << " joints\n";
  out << "stretch FK:  " << kin::endEffectorPosition(
             chain, chain.zeroConfiguration())
      << '\n';
  return 0;
}

int cmdFk(const kin::Chain& chain,
          const std::map<std::string, std::string>& opts, std::ostream& out) {
  const linalg::VecX q = parseConfig(chain, require(opts, "joints"));
  const auto pose = kin::forwardKinematics(chain, q);
  out << "position:    " << pose.position() << '\n';
  out << "rotation z:  " << pose.rotation().col(2) << '\n';
  return 0;
}

int cmdSolve(const kin::Chain& chain,
             const std::map<std::string, std::string>& opts,
             std::ostream& out) {
  const linalg::Vec3 target = parseTarget(require(opts, "target"));
  ik::SolveOptions options;
  options.accuracy = std::stod(optional(opts, "accuracy", "1e-2"));
  options.max_iterations = std::stoi(optional(opts, "max-iter", "10000"));
  options.speculations = std::stoi(optional(opts, "speculations", "64"));
  const std::string solver_name = optional(opts, "solver", "quick-ik");

  const auto solver = ik::makeSolver(solver_name, chain, options);
  const linalg::VecX seed =
      opts.count("seed-config")
          ? parseConfig(chain, opts.at("seed-config"))
          : chain.zeroConfiguration();

  const auto r = solver->solve(target, seed);
  out << "solver:      " << solver->name() << '\n';
  out << "status:      " << ik::toString(r.status) << '\n';
  out << "iterations:  " << r.iterations << '\n';
  out << "error:       " << r.error << " m\n";
  out << "theta:       " << r.theta << '\n';
  return r.converged() ? 0 : 1;
}

int cmdPose(const kin::Chain& chain,
            const std::map<std::string, std::string>& opts,
            std::ostream& out) {
  kin::Pose target;
  target.position = parseTarget(require(opts, "target"));
  const auto rpy_vals = parseNumberList(require(opts, "rpy"));
  if (rpy_vals.size() != 3)
    throw std::invalid_argument("--rpy needs exactly 3 numbers");
  target.orientation = linalg::rpy(rpy_vals[0], rpy_vals[1], rpy_vals[2]);

  ik::PoseSolveOptions options;
  options.accuracy = std::stod(optional(opts, "accuracy", "1e-2"));
  options.angular_accuracy =
      std::stod(optional(opts, "angular-accuracy", "1e-2"));

  ik::QuickIkPoseSolver solver(chain, options);
  const auto r = solver.solve(target, chain.zeroConfiguration());
  out << "status:      " << ik::toString(r.status) << '\n';
  out << "iterations:  " << r.iterations << '\n';
  out << "pos error:   " << r.position_error << " m\n";
  out << "ang error:   " << r.angular_error << " rad\n";
  out << "theta:       " << r.theta << '\n';
  return r.converged() ? 0 : 1;
}

int cmdAccel(const kin::Chain& chain,
             const std::map<std::string, std::string>& opts,
             std::ostream& out) {
  const linalg::Vec3 target = parseTarget(require(opts, "target"));
  ik::SolveOptions options;
  options.speculations = std::stoi(optional(opts, "speculations", "64"));
  acc::AccConfig config;
  config.num_ssus =
      static_cast<std::size_t>(std::stoul(optional(opts, "ssus", "32")));

  acc::IkAccelerator accelerator(chain, options, config);
  const auto r = accelerator.solve(target, chain.zeroConfiguration());
  const auto& s = accelerator.lastStats();
  out << "status:      " << ik::toString(r.status) << '\n';
  out << "iterations:  " << r.iterations << '\n';
  out << "cycles:      " << s.total_cycles << '\n';
  out << "latency:     " << s.time_ms << " ms @" << config.freq_ghz
      << " GHz\n";
  out << "energy:      " << s.energyMj() << " mJ\n";
  out << "avg power:   " << s.avg_power_mw << " mW\n";
  out << "area:        " << config.totalAreaMm2() << " mm^2\n";
  return r.converged() ? 0 : 1;
}

/// Result of one in-process serving run (serve-bench / stats share it).
struct ServeRun {
  service::ServiceStats stats;
  std::vector<double> latencies_ms;  ///< queue + solve, solved requests only
  double wall_ms = 0.0;
  std::size_t worker_count = 0;
  std::string solver_name;
  std::string cache_flag;
  int clusters = 0;
};

/// Circuit-breaker flags shared by serve / serve-bench / stats.  The
/// breaker stays disabled (zero overhead) unless at least one
/// threshold is set.
service::CircuitBreakerConfig parseBreakerOptions(
    const std::map<std::string, std::string>& opts) {
  service::CircuitBreakerConfig breaker;
  breaker.trip_queue_depth = static_cast<std::size_t>(
      std::stoul(optional(opts, "breaker-queue-depth", "0")));
  breaker.trip_p99_ms = std::stod(optional(opts, "breaker-p99-ms", "0"));
  breaker.shed_queue_depth = static_cast<std::size_t>(
      std::stoul(optional(opts, "shed-queue-depth", "0")));
  if (breaker.trip_p99_ms < 0.0)
    throw std::invalid_argument("--breaker-p99-ms must be >= 0");
  breaker.enabled = breaker.trip_queue_depth > 0 ||
                    breaker.trip_p99_ms > 0.0 || breaker.shed_queue_depth > 0;
  return breaker;
}

/// Batch-coalescer flags shared by serve / serve-bench / stats.
/// Batching is on by default (--max-batch 16, --batch-wait-us 100);
/// `--max-batch 1` restores per-request dispatch.
void applyBatchOptions(service::ServiceConfig& config,
                       const std::map<std::string, std::string>& opts) {
  config.max_batch = static_cast<std::size_t>(
      std::stoul(optional(opts, "max-batch", "16")));
  if (config.max_batch == 0)
    throw std::invalid_argument("--max-batch must be >= 1");
  config.batch_wait_us = static_cast<std::uint32_t>(
      std::stoul(optional(opts, "batch-wait-us", "100")));
}

/// Open-loop arrival run against a live IkService: submit `requests`
/// clustered targets at a fixed arrival rate (0 = all at once).  Open
/// loop means arrivals do not wait for completions — exactly the
/// regime where admission control matters.
ServeRun runServeWorkload(const kin::Chain& chain,
                          const std::map<std::string, std::string>& opts,
                          int default_requests) {
  ServeRun run;
  const int requests =
      std::stoi(optional(opts, "requests", std::to_string(default_requests)));
  run.clusters = std::stoi(optional(opts, "clusters", "8"));
  const double rate = std::stod(optional(opts, "rate", "0"));
  const double deadline_ms = std::stod(optional(opts, "deadline", "0"));
  run.cache_flag = optional(opts, "cache", "on");
  if (run.cache_flag != "on" && run.cache_flag != "off")
    throw std::invalid_argument("--cache must be 'on' or 'off'");

  ik::SolveOptions solve_options;
  solve_options.max_iterations = std::stoi(optional(opts, "max-iter", "10000"));
  run.solver_name = optional(opts, "solver", "quick-ik");

  service::ServiceConfig config;
  config.workers =
      static_cast<std::size_t>(std::stoul(optional(opts, "workers", "0")));
  config.queue_capacity = static_cast<std::size_t>(
      std::stoul(optional(opts, "queue-capacity", "1024")));
  config.enable_seed_cache = run.cache_flag == "on";
  config.breaker = parseBreakerOptions(opts);
  applyBatchOptions(config, opts);

  const auto tasks =
      workload::generateClusteredTasks(chain, requests, run.clusters);

  service::IkService svc(
      [&] { return ik::makeSolver(run.solver_name, chain, solve_options); },
      config);

  platform::WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<service::Response>> futures;
  futures.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (rate > 0.0) {
      // Open-loop pacing: arrival i is due at i/rate seconds; sleep
      // only if we are early (submission itself never blocks).
      const auto due =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(i) / rate));
      std::this_thread::sleep_until(due);
    }
    futures.push_back(svc.submit({.target = tasks[i].target,
                                  .seed = tasks[i].seed,
                                  .deadline_ms = deadline_ms}));
  }

  run.latencies_ms.reserve(futures.size());
  for (auto& f : futures) {
    const service::Response r = f.get();
    if (r.status == service::ResponseStatus::kSolved)
      run.latencies_ms.push_back(r.queue_ms + r.solve_ms);
  }
  run.wall_ms = timer.elapsedMs();
  svc.stop();

  run.stats = svc.stats();
  run.worker_count = svc.workerCount();
  std::sort(run.latencies_ms.begin(), run.latencies_ms.end());
  return run;
}

/// Render `stats` in `format` ("prom" or "json"; "auto" = by file
/// extension) and write it to `path`.
void writeStatsFile(const service::ServiceStats& stats,
                    const std::string& path, std::string format) {
  if (format == "auto")
    format = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0
                 ? "json"
                 : "prom";
  if (format != "prom" && format != "json")
    throw std::invalid_argument("--stats-format must be auto, prom or json");
  const obs::MetricsSnapshot snap = service::toMetricsSnapshot(stats);
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("cannot open stats file '" + path + "'");
  file << (format == "json" ? obs::renderJson(snap)
                            : obs::renderPrometheus(snap));
}

int cmdServeBench(const kin::Chain& chain,
                  const std::map<std::string, std::string>& opts,
                  std::ostream& out) {
  const ServeRun run = runServeWorkload(chain, opts, /*default_requests=*/200);
  const service::ServiceStats& stats = run.stats;
  const std::vector<double>& latencies_ms = run.latencies_ms;
  const auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(latencies_ms.size() - 1) + 0.5);
    return latencies_ms[std::min(rank, latencies_ms.size() - 1)];
  };

  if (opts.count("stats-out"))
    writeStatsFile(stats, opts.at("stats-out"),
                   optional(opts, "stats-format", "auto"));

  out << "solver:            " << run.solver_name << '\n';
  out << "workers:           " << run.worker_count << '\n';
  out << "requests:          " << stats.submitted << " (" << run.clusters
      << " clusters)\n";
  out << "solved:            " << stats.solved << " (" << stats.converged
      << " converged)\n";
  out << "rejected:          " << stats.rejected_queue_full << " queue-full, "
      << stats.rejected_shutdown << " shutdown\n";
  if (stats.breaker.trips > 0 || stats.rejected_overloaded > 0 ||
      stats.shed_low_priority > 0)
    out << "breaker:           " << stats.breaker.trips << " trips, "
        << stats.rejected_overloaded << " overloaded, "
        << stats.shed_low_priority << " shed\n";
  out << "deadline expired:  " << stats.deadline_expired << '\n';
  out << "wall:              " << run.wall_ms << " ms\n";
  out << "throughput:        "
      << (run.wall_ms > 0.0
              ? static_cast<double>(stats.solved) / (run.wall_ms * 1e-3)
              : 0.0)
      << " solves/s\n";
  out << "latency p50/p99:   " << percentile(50) << " / " << percentile(99)
      << " ms\n";
  out << "queue ms p50/p99:  " << stats.queue_hist.p50() << " / "
      << stats.queue_hist.p99() << '\n';
  out << "solve ms p50/p99:  " << stats.solve_hist.p50() << " / "
      << stats.solve_hist.p99() << '\n';
  out << "mean iterations:   " << stats.meanIterations() << '\n';
  if (stats.batches > 0)
    out << "batch occupancy:   " << stats.meanBatchOccupancy() << " mean, "
        << stats.batch_occupancy_hist.p50() << " / "
        << stats.batch_occupancy_hist.p99() << " p50/p99 ("
        << stats.batches << " bursts)\n";
  out << "cache:             " << run.cache_flag << ", hit rate "
      << stats.cacheHitRate() << " (" << stats.cache_hits << "/"
      << (stats.cache_hits + stats.cache_misses) << ")\n";
  return stats.solved == stats.submitted ? 0 : 1;
}

/// SIGINT/SIGTERM latch for `dadu serve`.  The handler only stores —
/// everything else (drain, stats dump) runs on the main thread, which
/// polls the flag.  sig_atomic_t-compatible: std::atomic<int> with
/// relaxed stores is async-signal-safe on every platform we target.
std::atomic<int> g_stop_signal{0};

void onStopSignal(int signum) {
  g_stop_signal.store(signum, std::memory_order_relaxed);
}

/// `dadu serve`: bind the TCP front-end on --port, serve every
/// registered robot spec (one service lane each — own queue, workers,
/// seed cache) until SIGINT/SIGTERM (or --max-runtime-ms, the test
/// seam), then drain — listener first, in-flight solves flushed — and
/// dump the combined router + wire observability snapshot (including
/// the per-spec dadu_spec_<name>_* series) in --stats-format.
int cmdServe(const registry::RobotSpecRegistry& registry,
             const std::map<std::string, std::string>& opts, std::ostream& out,
             std::ostream& err) {
  const std::string format = optional(opts, "stats-format", "text");
  if (format != "text" && format != "prom" && format != "json")
    throw std::invalid_argument("--stats-format must be text, prom or json");
  const int port_value = std::stoi(require(opts, "port"));
  if (port_value < 0 || port_value > 65535)
    throw std::invalid_argument("--port must be in [0, 65535]");
  const double max_runtime_ms =
      std::stod(optional(opts, "max-runtime-ms", "0"));
  const std::string cache_flag = optional(opts, "cache", "on");
  if (cache_flag != "on" && cache_flag != "off")
    throw std::invalid_argument("--cache must be 'on' or 'off'");

  service::ServiceConfig service_config;  // per-lane template
  service_config.workers =
      static_cast<std::size_t>(std::stoul(optional(opts, "workers", "0")));
  service_config.queue_capacity = static_cast<std::size_t>(
      std::stoul(optional(opts, "queue-capacity", "1024")));
  service_config.enable_seed_cache = cache_flag == "on";
  service_config.breaker = parseBreakerOptions(opts);
  applyBatchOptions(service_config, opts);

  net::ServerConfig server_config;
  server_config.bind_address = optional(opts, "address", "127.0.0.1");
  server_config.port = static_cast<std::uint16_t>(port_value);
  server_config.max_connections = static_cast<std::size_t>(
      std::stoul(optional(opts, "max-connections", "256")));
  server_config.idle_timeout_ms =
      std::stod(optional(opts, "idle-timeout", "0"));

  registry::RouterConfig router_config;
  router_config.base = service_config;
  registry::SpecRouter router(registry, router_config);
  net::IkServer server(router, server_config);
  server.start();

  // Install the handlers only while we serve, and restore the previous
  // disposition after — `run()` is a library entry point and must not
  // leave process-global state behind.
  struct sigaction action {};
  action.sa_handler = onStopSignal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int {}, old_term {};
  sigaction(SIGINT, &action, &old_int);
  sigaction(SIGTERM, &action, &old_term);
  g_stop_signal.store(0, std::memory_order_relaxed);

  out << "dadu serve: " << registry.size() << " robot spec(s), "
      << router.totalWorkers() << " workers\n";
  for (const registry::RobotSpec& spec : registry.specs())
    out << "  spec " << spec.id << ": " << spec.name << " ("
        << spec.chain.dof() << " DOF, " << spec.chain_spec << ", solver "
        << spec.solver << ")\n";
  out << "listening on " << server.address() << ":" << server.port() << '\n';
  out.flush();

  platform::WallTimer uptime;
  while (g_stop_signal.load(std::memory_order_relaxed) == 0) {
    if (max_runtime_ms > 0.0 && uptime.elapsedMs() >= max_runtime_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const int signum = g_stop_signal.load(std::memory_order_relaxed);
  if (signum != 0)
    err << "caught " << (signum == SIGINT ? "SIGINT" : "SIGTERM")
        << ", draining\n";

  server.stop();  // listener first, in-flight flushed
  router.stop();
  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);

  const obs::MetricsSnapshot snap =
      net::merge(router.metrics(), server.metrics());
  if (format == "prom")
    out << obs::renderPrometheus(snap);
  else if (format == "json")
    out << obs::renderJson(snap);
  else
    out << obs::renderText(snap);
  return 0;
}

/// Run a short in-process serving workload and render its full
/// observability snapshot (counters, gauges, latency histograms) in
/// the requested format — the terminal-facing view of the same data
/// serve-bench exports with --stats-out.
int cmdStats(const kin::Chain& chain,
             const std::map<std::string, std::string>& opts,
             std::ostream& out) {
  const std::string format = optional(opts, "format", "text");
  if (format != "text" && format != "prom" && format != "json")
    throw std::invalid_argument("--format must be text, prom or json");

  const ServeRun run = runServeWorkload(chain, opts, /*default_requests=*/100);
  const obs::MetricsSnapshot snap = service::toMetricsSnapshot(run.stats);
  if (format == "prom")
    out << obs::renderPrometheus(snap);
  else if (format == "json")
    out << obs::renderJson(snap);
  else
    out << obs::renderText(snap);
  return run.stats.solved == run.stats.submitted ? 0 : 1;
}

/// Deterministic whole-stack simulation: run a scenario under a seed,
/// print the outcome summary and trace digest, exit nonzero if any
/// conservation invariant broke.  Two runs with the same seed print
/// the same digest and write byte-identical trace files — the CI
/// determinism gate diffs exactly that.
int cmdSim(const std::map<std::string, std::string>& opts, std::ostream& out,
           std::ostream& err) {
  sim::ScenarioConfig config =
      sim::presetScenario(optional(opts, "scenario", "baseline"));
  config.seed = std::stoull(optional(opts, "seed", "1"));
  config.requests = std::stoull(
      optional(opts, "requests", std::to_string(config.requests)));
  config.clients =
      std::stoull(optional(opts, "clients", std::to_string(config.clients)));
  config.workers =
      std::stoull(optional(opts, "workers", std::to_string(config.workers)));
  config.max_batch = std::stoull(
      optional(opts, "max-batch", std::to_string(config.max_batch)));
  config.batch_wait_us = static_cast<std::uint32_t>(std::stoul(optional(
      opts, "batch-wait-us", std::to_string(config.batch_wait_us))));
  config.specs =
      std::stoull(optional(opts, "specs", std::to_string(config.specs)));
  config.trace_keep = std::stoull(
      optional(opts, "trace-keep", std::to_string(config.trace_keep)));

  const sim::ScenarioResult result = sim::runScenario(config);

  const auto trace_out = opts.find("trace-out");
  if (trace_out != opts.end()) {
    std::ofstream file(trace_out->second);
    if (!file) throw std::runtime_error("cannot write " + trace_out->second);
    result.trace.writeTo(file);
  }

  char digest[24];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(result.trace.digest()));
  out << "scenario:    " << config.name << " (seed " << config.seed << ")\n";
  out << "requests:    " << config.requests << " over " << config.clients
      << " clients, " << config.workers << " workers, batch "
      << config.max_batch << "/" << config.batch_wait_us << "us\n";
  out << "virtual:     " << result.virtual_ms << " ms simulated in "
      << result.wall_ms << " ms wall (" << result.tasks_executed
      << " tasks)\n";
  out << "outcomes:    " << result.responses << " responses, "
      << result.wire_errors << " errors, " << result.conn_closed
      << " lost, " << result.unsent << " unsent\n";
  out << "verdicts:    " << result.solved << " solved, " << result.rejected
      << " rejected, " << result.deadline_exceeded << " deadline\n";
  out << "service:     " << result.service.submitted << " submitted, "
      << result.service.converged << " converged, mean batch "
      << result.service.meanBatchOccupancy() << ", cache hit rate "
      << result.service.cacheHitRate() << '\n';
  for (const sim::ScenarioSpecStats& s : result.per_spec)
    out << "  spec " << s.spec_id << " (" << s.name << "): "
        << s.stats.submitted << " submitted, " << s.stats.solved
        << " solved, cache hit rate " << s.stats.cacheHitRate() << '\n';
  out << "trace:       " << result.trace.events() << " events, digest "
      << digest << '\n';
  if (!result.ok()) {
    for (const std::string& v : result.violations)
      err << "invariant violated: " << v << '\n';
    return 1;
  }
  out << "invariants:  ok\n";
  return 0;
}

}  // namespace

std::vector<double> parseNumberList(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty())
      throw std::invalid_argument("empty entry in number list '" + csv + "'");
    std::size_t consumed = 0;
    const double v = std::stod(item, &consumed);
    if (consumed != item.size())
      throw std::invalid_argument("bad number '" + item + "'");
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("empty number list");
  return out;
}

kin::Chain resolveRobot(const std::string& spec) {
  // The chain-spec grammar lives with the multi-robot registry now
  // (one grammar for --robot flags, bindings and spec files alike).
  return registry::resolveChainSpec(spec);
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "help") {
      out << kUsage;
      return args.empty() ? 2 : 0;
    }
    const std::string& command = args[0];
    const auto opts = parseOptions(args, 1);
    // Global: pin the speculation backend before any solver is built.
    if (const auto it = opts.find("spec-backend"); it != opts.end()) {
      if (!kin::setSpecBackendOverride(it->second))
        throw std::invalid_argument(
            "--spec-backend '" + it->second +
            "' is unknown, compiled out, or unsupported by this CPU");
    }
    // The simulator models its own robot; no --robot required.
    if (command == "sim") return cmdSim(opts, out, err);
    // serve builds a registry from EVERY --robot occurrence (the
    // parsed map only keeps the last one), so it collects bindings
    // straight from the arg list.
    if (command == "serve") {
      ik::SolveOptions solve_options;
      solve_options.max_iterations =
          std::stoi(optional(opts, "max-iter", "10000"));
      const std::string solver_name = optional(opts, "solver", "quick-ik");
      registry::RobotSpecRegistry registry;
      for (std::size_t i = 1; i + 1 < args.size(); i += 2)
        if (args[i] == "--robot")
          registry.addBinding(args[i + 1], solver_name, solve_options);
      if (opts.count("robots-file"))
        registry.loadFile(opts.at("robots-file"), solver_name, solve_options);
      if (registry.empty())
        throw std::invalid_argument(
            "serve needs at least one --robot binding (or --robots-file)");
      return cmdServe(registry, opts, out, err);
    }
    const kin::Chain chain = resolveRobot(require(opts, "robot"));

    if (command == "info") return cmdInfo(chain, out);
    if (command == "fk") return cmdFk(chain, opts, out);
    if (command == "solve") return cmdSolve(chain, opts, out);
    if (command == "accel") return cmdAccel(chain, opts, out);
    if (command == "pose") return cmdPose(chain, opts, out);
    if (command == "serve-bench") return cmdServeBench(chain, opts, out);
    if (command == "stats") return cmdStats(chain, opts, out);
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace dadu::cli
