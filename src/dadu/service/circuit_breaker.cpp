#include "dadu/service/circuit_breaker.hpp"

#include <algorithm>
#include <cmath>

namespace dadu::service {

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {
  if (config_.latency_window == 0) config_.latency_window = 1;
  if (config_.min_samples == 0) config_.min_samples = 1;
  if (config_.half_open_probes == 0) config_.half_open_probes = 1;
  window_.resize(config_.latency_window, 0.0);
}

CircuitBreaker::Admit CircuitBreaker::admit(Priority priority,
                                            std::size_t queue_depth,
                                            Clock::time_point now) {
  if (!config_.enabled) return Admit::kAccept;
  std::lock_guard<std::mutex> lock(mutex_);

  if (state_ == State::kOpen) {
    const auto open_for = std::chrono::duration<double, std::milli>(
        now - opened_at_);
    if (open_for.count() < config_.open_ms) return Admit::kRejectOpen;
    // Cool-down elapsed: start probing.
    state_ = State::kHalfOpen;
    probes_outstanding_ = 0;
    probe_successes_ = 0;
  }

  if (state_ == State::kHalfOpen) {
    if (probes_outstanding_ < config_.half_open_probes) {
      ++probes_outstanding_;
      ++probes_issued_;
      return Admit::kProbe;
    }
    return Admit::kRejectOpen;
  }

  // Closed: depth-based trip first (a deep queue means latency is
  // already lost — no point admitting more), then low-priority shed.
  if (config_.trip_queue_depth > 0 &&
      queue_depth >= config_.trip_queue_depth) {
    tripLocked(now);
    return Admit::kRejectOpen;
  }
  if (priority == Priority::kLow && config_.shed_queue_depth > 0 &&
      queue_depth >= config_.shed_queue_depth)
    return Admit::kShedLow;
  return Admit::kAccept;
}

void CircuitBreaker::recordSolve(double solve_ms, Clock::time_point now) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  window_[window_next_] = solve_ms;
  window_next_ = (window_next_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());

  // The p99 criterion only trips a Closed breaker: half-open probe
  // latencies are judged by onProbeResult, and an Open breaker is
  // already tripped.
  if (state_ == State::kClosed && config_.trip_p99_ms > 0.0 &&
      window_count_ >= config_.min_samples &&
      p99Locked() > config_.trip_p99_ms)
    tripLocked(now);
}

void CircuitBreaker::onProbeResult(bool success, Clock::time_point now) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // A probe completing after its half-open episode ended (the breaker
  // reopened or closed meanwhile) carries no information about the
  // current state.
  if (state_ != State::kHalfOpen) return;
  if (probes_outstanding_ > 0) --probes_outstanding_;
  if (!success) {
    tripLocked(now);  // fresh open window
    return;
  }
  if (++probe_successes_ >= config_.half_open_probes) {
    state_ = State::kClosed;
    // Forget pre-trip latencies so the stale window cannot instantly
    // re-trip a recovered service.
    window_next_ = 0;
    window_count_ = 0;
  }
}

void CircuitBreaker::tripLocked(Clock::time_point now) {
  state_ = State::kOpen;
  opened_at_ = now;
  probes_outstanding_ = 0;
  probe_successes_ = 0;
  ++trips_;
}

double CircuitBreaker::p99Locked() const {
  // nth_element over <=window samples; runs once per completed solve,
  // which is negligible next to the solve itself.
  std::vector<double> samples(window_.begin(),
                              window_.begin() +
                                  static_cast<std::ptrdiff_t>(window_count_));
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(samples.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreakerSnapshot CircuitBreaker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CircuitBreakerSnapshot snap;
  snap.state = state_ == State::kClosed ? 0 : state_ == State::kOpen ? 1 : 2;
  snap.trips = trips_;
  snap.probes_issued = probes_issued_;
  return snap;
}

}  // namespace dadu::service
