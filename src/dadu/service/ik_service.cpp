#include "dadu/service/ik_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "dadu/fault/fault.hpp"
#include "dadu/kinematics/backends/spec_backend.hpp"
#include "dadu/platform/timer.hpp"

namespace dadu::service {
namespace {

using Clock = std::chrono::steady_clock;

double msBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

IkService::IkService(SolverFactory factory, ServiceConfig config)
    : config_(config),
      factory_(std::move(factory)),
      queue_(config.queue_capacity, config.clock),
      cache_(config.cache),
      breaker_(config.breaker),
      counters_(kCounterCount, config.stat_shards),
      queue_hist_(config.latency),
      solve_hist_(config.latency),
      e2e_hist_(config.latency),
      // Occupancy is a count (1..max_batch), not a latency: a 1..4096
      // ladder at 24 buckets/decade resolves individual small sizes.
      batch_hist_(obs::LatencyHistogram::Config{1.0, 4096.0, 24}) {
  if (!factory_) throw std::invalid_argument("IkService: null factory");
  std::size_t workers = config_.workers;
  if (workers == 0)
    workers = std::max(1u, std::thread::hardware_concurrency());
  if (config_.executor) {
    // Cooperative mode: no threads.  Workers are dispatch-step state
    // machines driven by the executor; the vector never reallocates
    // (steps capture indices, not iterators).
    coop_workers_ = std::vector<CoopWorker>(workers);
    return;
  }
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

IkService::~IkService() { stop(Drain::kDrainPending); }

std::future<Response> IkService::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submitInternal(std::move(request),
                 [promise](Response&& response, std::exception_ptr error) {
                   if (error)
                     promise->set_exception(error);
                   else
                     promise->set_value(std::move(response));
                 });
  return future;
}

void IkService::submit(Request request, Completion done) {
  if (!done) throw std::invalid_argument("IkService::submit: null callback");
  submitInternal(
      std::move(request),
      [done = std::move(done)](Response&& response,
                               std::exception_ptr error) mutable {
        if (error) {
          // Callbacks have no exception channel: fold the solver
          // exception into a typed reject so the caller still hears
          // back exactly once.
          Response failed;
          failed.status = ResponseStatus::kRejected;
          failed.reject_reason = RejectReason::kInternalError;
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            failed.message = e.what();
          } catch (...) {
            failed.message = "unknown solver exception";
          }
          done(std::move(failed));
        } else {
          done(std::move(response));
        }
      });
}

void IkService::submitInternal(Request request, JobCompletion finish) {
  counters_.add(kSubmitted);

  Job job;
  job.enqueued = now();

  // Overload brownout gate: the breaker fast-rejects while Open and
  // sheds low-priority work while the queue is deep — both *before*
  // the queue is touched, so an overloaded service answers "back off"
  // in microseconds.  Disabled breaker = one branch.
  if (breaker_.enabled()) {
    switch (breaker_.admit(request.priority, queue_.size(), job.enqueued)) {
      case CircuitBreaker::Admit::kAccept:
        break;
      case CircuitBreaker::Admit::kProbe:
        job.probe = true;
        break;
      case CircuitBreaker::Admit::kRejectOpen:
        counters_.add(kRejectedOverloaded);
        rejectNow(finish, RejectReason::kOverloaded);
        return;
      case CircuitBreaker::Admit::kShedLow:
        counters_.add(kShedLowPriority);
        rejectNow(finish, RejectReason::kOverloaded);
        return;
    }
  }

  if (request.deadline_ms > 0.0) {
    job.deadline =
        job.enqueued + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               request.deadline_ms));
    job.has_deadline = true;
  }
  job.request = std::move(request);
  job.finish = std::move(finish);

  switch (queue_.tryPush(std::move(job))) {
    case PushResult::kAccepted:
      // Cooperative mode has no parked threads to notify: posting the
      // dispatch steps here is the notify_one().
      if (config_.executor) scheduleCoopWorkers();
      break;
    case PushResult::kFull:
      // tryPush did not move from `job` — fail its completion here.
      rejectJob(job, RejectReason::kQueueFull);
      break;
    case PushResult::kClosed:
      rejectJob(job, RejectReason::kShutdown);
      break;
  }
}

void IkService::rejectNow(JobCompletion& finish, RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      counters_.add(kRejectedQueueFull);
      break;
    case RejectReason::kShutdown:
      counters_.add(kRejectedShutdown);
      break;
    default:
      break;  // kOverloaded counted at the admission site
  }
  Response response;
  response.status = ResponseStatus::kRejected;
  response.reject_reason = reason;
  finish(std::move(response), nullptr);
}

void IkService::rejectJob(Job& job, RejectReason reason) {
  // A probe that never executes tells the breaker nothing good.
  if (job.probe) breaker_.onProbeResult(false, now());
  rejectNow(job.finish, reason);
}

void IkService::workerLoop() {
  const std::unique_ptr<ik::IkSolver> solver = factory_();
  solver->setClock(config_.clock);
  if (config_.max_batch <= 1) {
    Job job;
    while (queue_.pop(job)) {
      // Discard-mode shutdown: anything dequeued after the discard flag
      // is up gets rejected, never solved.  Without this check a worker
      // racing stop()'s close()->drain() window could still execute
      // pending work the caller asked to be dropped.
      if (discard_.load(std::memory_order_acquire)) {
        rejectJob(job, RejectReason::kShutdown);
        continue;
      }
      process(*solver, std::move(job));
    }
    return;
  }

  // Batched dispatch: drain a burst per wakeup.  Every burst goes
  // through processBatch — including singletons, so occupancy stats
  // describe all dispatched work, not just the lucky coalesced bursts.
  BatchScratch scratch;
  const auto wait = std::chrono::microseconds(config_.batch_wait_us);
  while (queue_.popMany(scratch.burst, config_.max_batch, wait) > 0) {
    if (discard_.load(std::memory_order_acquire)) {
      for (Job& job : scratch.burst) rejectJob(job, RejectReason::kShutdown);
      continue;
    }
    processBatch(*solver, scratch);
  }
}

ik::IkSolver& IkService::coopSolver(CoopWorker& w) {
  if (!w.solver) {
    w.solver = factory_();
    w.solver->setClock(config_.clock);
  }
  return *w.solver;
}

void IkService::scheduleCoopWorkers() {
  // Single-threaded by the executor-mode contract: no locking needed
  // around the worker state machines.
  for (std::size_t i = 0; i < coop_workers_.size(); ++i) {
    if (queue_.size() == 0) return;
    CoopWorker& w = coop_workers_[i];
    if (w.busy) {
      // A lingering worker parked on its coalescing timer is woken
      // early the moment a full burst is ready — the discrete-event
      // mirror of popMany's "return early once full".
      if (w.lingering && queue_.size() >= config_.max_batch) {
        w.lingering = false;
        const std::uint64_t gen = ++w.generation;
        config_.executor->post([this, i, gen] { coopStep(i, gen); });
      }
      continue;
    }
    w.busy = true;
    w.lingering = false;
    const std::uint64_t gen = ++w.generation;
    config_.executor->post([this, i, gen] { coopStep(i, gen); });
  }
}

void IkService::coopStep(std::size_t worker, std::uint64_t generation) {
  CoopWorker& w = coop_workers_[worker];
  if (generation != w.generation) return;  // superseded or stopped
  const bool discarding = discard_.load(std::memory_order_acquire);

  if (config_.max_batch <= 1) {
    Job job;
    if (!queue_.tryPop(job)) {
      w.busy = false;
      return;
    }
    if (discarding)
      rejectJob(job, RejectReason::kShutdown);
    else
      process(coopSolver(w), std::move(job));
  } else {
    const std::size_t depth = queue_.size();
    if (depth == 0) {
      w.busy = false;
      w.lingering = false;
      return;
    }
    // The Nagle-style coalescing window, modeled as a timer: an
    // under-filled burst parks for batch_wait_us (or until
    // scheduleCoopWorkers wakes it early with a full queue) before
    // taking whatever is on hand.  Same observable semantics as
    // popMany's condition-variable linger — the burst dispatches at
    // linger end, and every lane's queue_ms includes the wait.
    if (!w.lingering && depth < config_.max_batch &&
        config_.batch_wait_us > 0 && !discarding && !queue_.closed()) {
      w.lingering = true;
      const std::uint64_t gen = ++w.generation;
      config_.executor->postAt(
          now() + std::chrono::microseconds(config_.batch_wait_us),
          [this, worker, gen] { coopStep(worker, gen); });
      return;
    }
    w.lingering = false;
    if (queue_.tryPopMany(w.scratch.burst, config_.max_batch) == 0) {
      w.busy = false;
      return;
    }
    if (discarding) {
      for (Job& job : w.scratch.burst)
        rejectJob(job, RejectReason::kShutdown);
    } else {
      processBatch(coopSolver(w), w.scratch);
    }
  }

  if (queue_.size() > 0) {
    // Yield through the executor between bursts (rather than looping
    // inline) so submissions and other workers interleave exactly as
    // the scheduler's seed decides.
    const std::uint64_t gen = ++w.generation;
    config_.executor->post([this, worker, gen] { coopStep(worker, gen); });
  } else {
    w.busy = false;
  }
}

void IkService::processBatch(ik::IkSolver& solver, BatchScratch& s) {
  const std::size_t m = s.burst.size();
  counters_.add(kBatches);
  counters_.add(kBatchedLanes, m);
  batch_hist_.record(static_cast<double>(m));
  obs::ObsSink* const sink = config_.sink.get();

  s.live.assign(m, 0);
  s.queue_ms.assign(m, 0.0);
  s.fault_ms.assign(m, 0.0);
  s.from_cache.assign(m, 0);
  if (s.seeds.size() < m) s.seeds.resize(m);

  // Pickup pass, FIFO order: per-lane stall fault, queue-wait stamp,
  // and the queued-past-deadline drop — statement-for-statement the
  // head of process(), just applied lane by lane before any solving.
  for (std::size_t i = 0; i < m; ++i) {
    Job& job = s.burst[i];
    if (fault::FaultInjector::armed()) fault::inject("service.worker.stall", config_.clock);
    const Clock::time_point picked_up = now();
    s.queue_ms[i] = msBetween(job.enqueued, picked_up);
    if (job.has_deadline && picked_up > job.deadline) {
      counters_.add(kDeadlineExpired);
      if (sink) sink->onCount("deadline_expired", 1);
      if (job.probe) breaker_.onProbeResult(false, picked_up);
      Response response;
      response.status = ResponseStatus::kDeadlineExceeded;
      response.queue_ms = s.queue_ms[i];
      job.finish(std::move(response), nullptr);
      continue;
    }
    s.live[i] = 1;
  }

  // Seed resolution.  Cache-eligible lanes go through one bulk
  // lookupMany (single shard-lock sweep for the whole burst); the rest
  // take their explicit seed or the zero configuration, as process()
  // does.  The seed-corruption fault fires per hit lane.
  s.cache_targets.clear();
  s.cache_slots.clear();
  for (std::size_t i = 0; i < m; ++i) {
    if (!s.live[i]) continue;
    Job& job = s.burst[i];
    if (config_.enable_seed_cache && job.request.use_seed_cache) {
      s.cache_targets.push_back(job.request.target);
      s.cache_slots.push_back(i);
    } else if (!job.request.seed.empty()) {
      s.seeds[i] = std::move(job.request.seed);
    } else {
      s.seeds[i] = solver.chain().zeroConfiguration();
    }
  }
  if (!s.cache_targets.empty()) {
    const std::size_t queries = s.cache_targets.size();
    if (s.cache_hits.size() < queries) s.cache_hits.resize(queries);
    if (s.probe_seeds.size() < queries) s.probe_seeds.resize(queries);
    cache_.lookupMany(s.cache_targets.data(), queries, s.probe_seeds.data(),
                      s.cache_hits.data());
    for (std::size_t c = 0; c < queries; ++c) {
      const std::size_t i = s.cache_slots[c];
      Job& job = s.burst[i];
      if (s.cache_hits[c]) {
        s.seeds[i] = s.probe_seeds[c];
        s.from_cache[i] = 1;
        if (fault::FaultInjector::armed()) {
          const fault::Decision d = fault::decide("service.seed_cache.seed");
          if (d.action == fault::Action::kCorrupt)
            fault::corruptDoubles(s.seeds[i].data(), s.seeds[i].size(),
                                  d.corrupt_seed);
        }
      } else if (!job.request.seed.empty()) {
        s.seeds[i] = std::move(job.request.seed);
      } else {
        s.seeds[i] = solver.chain().zeroConfiguration();
      }
    }
  }

  // Pre-solve fault point, per lane: a throw here takes the exact
  // internal-error path a solver throw takes, without touching its
  // batchmates; a delay is charged to the lane's solve_ms below.
  if (fault::FaultInjector::armed()) {
    for (std::size_t i = 0; i < m; ++i) {
      if (!s.live[i]) continue;
      platform::WallTimer fault_timer(config_.clock);
      try {
        fault::inject("service.worker.solve", config_.clock);
      } catch (...) {
        Job& job = s.burst[i];
        if (job.probe) breaker_.onProbeResult(false, now());
        counters_.add(kInternalErrors);
        Response failed;
        job.finish(std::move(failed), std::current_exception());
        s.live[i] = 0;
        continue;
      }
      s.fault_ms[i] = fault_timer.elapsedMs();
    }
  }

  // Fused solve: every surviving lane goes through one solveMany call
  // (one grouped speculation kernel inside), each with its own deadline.
  s.lanes.clear();
  s.lane_job.clear();
  for (std::size_t i = 0; i < m; ++i) {
    if (!s.live[i]) continue;
    Job& job = s.burst[i];
    s.lanes.push_back({job.request.target, &s.seeds[i],
                       job.has_deadline ? job.deadline : Clock::time_point{}});
    s.lane_job.push_back(i);
  }
  if (s.lanes.empty()) return;
  if (s.outcomes.size() < s.lanes.size()) s.outcomes.resize(s.lanes.size());
  solver.solveMany(s.lanes.data(), s.outcomes.data(), s.lanes.size());

  // Retirement pass: per-lane bookkeeping identical to the tail of
  // process() — cache insert, breaker verdicts, counters, histograms,
  // sink spans, and exactly one completion per lane.
  for (std::size_t lane = 0; lane < s.lane_job.size(); ++lane) {
    const std::size_t i = s.lane_job[lane];
    Job& job = s.burst[i];
    ik::BatchLaneResult& outcome = s.outcomes[lane];
    const double queue_ms = s.queue_ms[i];

    if (outcome.error) {
      if (job.probe) breaker_.onProbeResult(false, now());
      counters_.add(kInternalErrors);
      Response failed;
      job.finish(std::move(failed), outcome.error);
      continue;
    }

    ik::SolveResult result = std::move(outcome.result);
    const double solve_ms = outcome.solve_ms + s.fault_ms[i];

    if (result.converged() && config_.enable_seed_cache &&
        job.request.use_seed_cache)
      cache_.insert(job.request.target, result.theta);

    const bool timed_out = result.status == ik::Status::kTimedOut;
    if (breaker_.enabled()) {
      breaker_.recordSolve(solve_ms, now());
      if (job.probe) breaker_.onProbeResult(!timed_out, now());
    }

    counters_.add(kSolved);
    if (result.converged()) counters_.add(kConverged);
    if (timed_out) counters_.add(kTimedOutSolves);
    counters_.add(kIterations, static_cast<std::uint64_t>(result.iterations));
    counters_.add(kFkEvaluations,
                  static_cast<std::uint64_t>(result.fk_evaluations));
    counters_.add(kSpeculationLoad,
                  static_cast<std::uint64_t>(result.speculation_load));
    queue_hist_.record(queue_ms);
    solve_hist_.record(solve_ms);
    e2e_hist_.record(queue_ms + solve_ms);

    if (sink) {
      sink->onSpan("queue", queue_ms);
      sink->onSpan("solve", solve_ms);
      sink->onCount("iterations", static_cast<std::uint64_t>(result.iterations));
      sink->onCount("fk_evaluations",
                    static_cast<std::uint64_t>(result.fk_evaluations));
      sink->onCount("speculation_load",
                    static_cast<std::uint64_t>(result.speculation_load));
    }

    Response response;
    response.status = ResponseStatus::kSolved;
    response.result = std::move(result);
    response.queue_ms = queue_ms;
    response.solve_ms = solve_ms;
    response.seeded_from_cache = s.from_cache[i] != 0;
    job.finish(std::move(response), nullptr);
  }
}

void IkService::process(ik::IkSolver& solver, Job job) {
  // Fault point: a worker pausing between dequeue and the deadline
  // check — the stall that turns a healthy queue wait into an expiry.
  if (fault::FaultInjector::armed()) fault::inject("service.worker.stall", config_.clock);

  const Clock::time_point picked_up = now();
  const double queue_ms = msBetween(job.enqueued, picked_up);
  obs::ObsSink* const sink = config_.sink.get();

  if (job.has_deadline && picked_up > job.deadline) {
    counters_.add(kDeadlineExpired);
    if (sink) sink->onCount("deadline_expired", 1);
    if (job.probe) breaker_.onProbeResult(false, picked_up);
    Response response;
    response.status = ResponseStatus::kDeadlineExceeded;
    response.queue_ms = queue_ms;
    job.finish(std::move(response), nullptr);
    return;
  }

  // Seed selection: explicit seed, cache hit (preferred when allowed),
  // or the chain's zero configuration as the empty-seed default.
  const bool cache_allowed =
      config_.enable_seed_cache && job.request.use_seed_cache;
  linalg::VecX seed;
  bool from_cache = false;
  if (cache_allowed && cache_.lookup(job.request.target, seed)) {
    from_cache = true;
    // Fault point: a poisoned warm-start seed — finite garbage that
    // must degrade to a slow solve, never a crash or NaN result.
    if (fault::FaultInjector::armed()) {
      const fault::Decision d = fault::decide("service.seed_cache.seed");
      if (d.action == fault::Action::kCorrupt)
        fault::corruptDoubles(seed.data(), seed.size(), d.corrupt_seed);
    }
  } else if (!job.request.seed.empty()) {
    seed = std::move(job.request.seed);
  } else {
    seed = solver.chain().zeroConfiguration();
  }

  // Watchdog: arm (or clear) the solver's cooperative deadline so a
  // runaway solve surfaces kTimedOut with its best-so-far iterate
  // instead of outliving the request's deadline unbounded.
  solver.setDeadline(job.has_deadline ? job.deadline
                                      : Clock::time_point{});

  try {
    platform::WallTimer timer(config_.clock);
    // Fault point: a slow solve (kDelay, charged to solve_ms) or a
    // solver throw (kError) — inside the try so the error takes the
    // exact path a real solver exception takes.
    if (fault::FaultInjector::armed()) fault::inject("service.worker.solve", config_.clock);
    ik::SolveResult result = solver.solve(job.request.target, seed);
    const double solve_ms = timer.elapsedMs();

    if (result.converged() && cache_allowed)
      cache_.insert(job.request.target, result.theta);

    const bool timed_out = result.status == ik::Status::kTimedOut;
    if (breaker_.enabled()) {
      breaker_.recordSolve(solve_ms, now());
      // A probe that ran to a verdict is a success unless the watchdog
      // had to kill it — a timed-out probe means the service is still
      // drowning.
      if (job.probe) breaker_.onProbeResult(!timed_out, now());
    }

    // Lock-free bookkeeping: relaxed sharded counters + histograms.
    counters_.add(kSolved);
    if (result.converged()) counters_.add(kConverged);
    if (timed_out) counters_.add(kTimedOutSolves);
    counters_.add(kIterations, static_cast<std::uint64_t>(result.iterations));
    counters_.add(kFkEvaluations,
                  static_cast<std::uint64_t>(result.fk_evaluations));
    counters_.add(kSpeculationLoad,
                  static_cast<std::uint64_t>(result.speculation_load));
    queue_hist_.record(queue_ms);
    solve_hist_.record(solve_ms);
    e2e_hist_.record(queue_ms + solve_ms);

    if (sink) {
      sink->onSpan("queue", queue_ms);
      sink->onSpan("solve", solve_ms);
      sink->onCount("iterations", static_cast<std::uint64_t>(result.iterations));
      sink->onCount("fk_evaluations",
                    static_cast<std::uint64_t>(result.fk_evaluations));
      sink->onCount("speculation_load",
                    static_cast<std::uint64_t>(result.speculation_load));
    }

    Response response;
    response.status = ResponseStatus::kSolved;
    response.result = std::move(result);
    response.queue_ms = queue_ms;
    response.solve_ms = solve_ms;
    response.seeded_from_cache = from_cache;
    job.finish(std::move(response), nullptr);
  } catch (...) {
    // Solver precondition failures (seed-size mismatch, non-finite
    // target) surface through the completion, not the worker thread.
    if (job.probe) breaker_.onProbeResult(false, now());
    counters_.add(kInternalErrors);
    Response failed;
    job.finish(std::move(failed), std::current_exception());
  }
}

void IkService::stop(Drain mode) {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopped_.store(true);
  // Order matters for discard: raise the flag BEFORE closing the
  // queue.  A worker that pops a job after close() then observes
  // discard_ and rejects instead of solving; stop()'s own drain below
  // rejects whatever the workers never touched.  Either way no pending
  // job is executed after a discard stop.
  if (mode == Drain::kDiscardPending)
    discard_.store(true, std::memory_order_release);
  queue_.close();
  if (config_.after_close_hook) config_.after_close_hook();
  if (mode == Drain::kDiscardPending) {
    for (Job& job : queue_.drain())
      rejectJob(job, RejectReason::kShutdown);
  }
  if (config_.executor) {
    // Cooperative mode: no threads to join.  Invalidate every posted
    // dispatch step (a stale step firing after stop must be a no-op),
    // then finish whatever is still queued inline — drain semantics
    // solve it, discard already rejected it above.
    for (CoopWorker& w : coop_workers_) {
      ++w.generation;
      w.busy = false;
      w.lingering = false;
    }
    if (mode == Drain::kDrainPending && !coop_workers_.empty()) {
      Job job;
      while (queue_.tryPop(job))
        process(coopSolver(coop_workers_[0]), std::move(job));
    }
    return;
  }
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

ServiceStats IkService::stats() const {
  const std::vector<std::uint64_t> totals = counters_.snapshot();
  ServiceStats snapshot;
  snapshot.submitted = totals[kSubmitted];
  snapshot.rejected_queue_full = totals[kRejectedQueueFull];
  snapshot.rejected_shutdown = totals[kRejectedShutdown];
  snapshot.rejected_overloaded = totals[kRejectedOverloaded];
  snapshot.shed_low_priority = totals[kShedLowPriority];
  snapshot.deadline_expired = totals[kDeadlineExpired];
  snapshot.solved = totals[kSolved];
  snapshot.converged = totals[kConverged];
  snapshot.timed_out = totals[kTimedOutSolves];
  snapshot.internal_errors = totals[kInternalErrors];
  snapshot.total_iterations = static_cast<long long>(totals[kIterations]);
  snapshot.total_fk_evaluations =
      static_cast<long long>(totals[kFkEvaluations]);
  snapshot.total_speculation_load =
      static_cast<long long>(totals[kSpeculationLoad]);
  snapshot.batches = totals[kBatches];
  snapshot.batched_lanes = totals[kBatchedLanes];

  snapshot.queue_hist = queue_hist_.snapshot();
  snapshot.solve_hist = solve_hist_.snapshot();
  snapshot.e2e_hist = e2e_hist_.snapshot();
  snapshot.batch_occupancy_hist = batch_hist_.snapshot();
  snapshot.total_queue_ms = snapshot.queue_hist.sum;
  snapshot.total_solve_ms = snapshot.solve_hist.sum;

  snapshot.breaker = breaker_.snapshot();
  snapshot.spec_backend = kin::activeSpecBackendName();

  const SeedCacheStats cache = cache_.stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_inserts = cache.inserts;
  snapshot.cache_evictions = cache.evictions;
  return snapshot;
}

}  // namespace dadu::service
