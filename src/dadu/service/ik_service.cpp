#include "dadu/service/ik_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "dadu/platform/timer.hpp"

namespace dadu::service {
namespace {

using Clock = std::chrono::steady_clock;

double msBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

IkService::IkService(SolverFactory factory, ServiceConfig config)
    : config_(config),
      factory_(std::move(factory)),
      queue_(config.queue_capacity),
      cache_(config.cache) {
  if (!factory_) throw std::invalid_argument("IkService: null factory");
  std::size_t workers = config_.workers;
  if (workers == 0)
    workers = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

IkService::~IkService() { stop(Drain::kDrainPending); }

std::future<Response> IkService::submit(Request request) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.submitted;
  }

  Job job;
  job.enqueued = Clock::now();
  if (request.deadline_ms > 0.0) {
    job.deadline =
        job.enqueued + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               request.deadline_ms));
    job.has_deadline = true;
  }
  job.request = std::move(request);
  std::future<Response> future = job.promise.get_future();

  switch (queue_.tryPush(std::move(job))) {
    case PushResult::kAccepted:
      break;
    case PushResult::kFull:
      // tryPush did not move from `job` — fail its promise here.
      rejectNow(job.promise, RejectReason::kQueueFull);
      break;
    case PushResult::kClosed:
      rejectNow(job.promise, RejectReason::kShutdown);
      break;
  }
  return future;
}

void IkService::rejectNow(std::promise<Response>& promise,
                          RejectReason reason) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (reason == RejectReason::kQueueFull)
      ++counters_.rejected_queue_full;
    else
      ++counters_.rejected_shutdown;
  }
  Response response;
  response.status = ResponseStatus::kRejected;
  response.reject_reason = reason;
  promise.set_value(std::move(response));
}

void IkService::workerLoop() {
  const std::unique_ptr<ik::IkSolver> solver = factory_();
  Job job;
  while (queue_.pop(job)) process(*solver, std::move(job));
}

void IkService::process(ik::IkSolver& solver, Job job) {
  const Clock::time_point picked_up = Clock::now();
  const double queue_ms = msBetween(job.enqueued, picked_up);

  if (job.has_deadline && picked_up > job.deadline) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.deadline_expired;
    }
    Response response;
    response.status = ResponseStatus::kDeadlineExceeded;
    response.queue_ms = queue_ms;
    job.promise.set_value(std::move(response));
    return;
  }

  // Seed selection: explicit seed, cache hit (preferred when allowed),
  // or the chain's zero configuration as the empty-seed default.
  const bool cache_allowed =
      config_.enable_seed_cache && job.request.use_seed_cache;
  linalg::VecX seed;
  bool from_cache = false;
  if (cache_allowed && cache_.lookup(job.request.target, seed)) {
    from_cache = true;
  } else if (!job.request.seed.empty()) {
    seed = std::move(job.request.seed);
  } else {
    seed = solver.chain().zeroConfiguration();
  }

  try {
    platform::WallTimer timer;
    ik::SolveResult result = solver.solve(job.request.target, seed);
    const double solve_ms = timer.elapsedMs();

    if (result.converged() && cache_allowed)
      cache_.insert(job.request.target, result.theta);

    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.solved;
      if (result.converged()) ++counters_.converged;
      counters_.total_iterations += result.iterations;
      counters_.total_queue_ms += queue_ms;
      counters_.total_solve_ms += solve_ms;
    }

    Response response;
    response.status = ResponseStatus::kSolved;
    response.result = std::move(result);
    response.queue_ms = queue_ms;
    response.solve_ms = solve_ms;
    response.seeded_from_cache = from_cache;
    job.promise.set_value(std::move(response));
  } catch (...) {
    // Solver precondition failures (seed-size mismatch, non-finite
    // target) surface through the future, not the worker thread.
    job.promise.set_exception(std::current_exception());
  }
}

void IkService::stop(Drain mode) {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopped_.store(true);
  queue_.close();
  if (mode == Drain::kDiscardPending) {
    for (Job& job : queue_.drain()) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++counters_.rejected_shutdown;
      }
      Response response;
      response.status = ResponseStatus::kRejected;
      response.reject_reason = RejectReason::kShutdown;
      job.promise.set_value(std::move(response));
    }
  }
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

ServiceStats IkService::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = counters_;
  }
  const SeedCacheStats cache = cache_.stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_inserts = cache.inserts;
  return snapshot;
}

}  // namespace dadu::service
