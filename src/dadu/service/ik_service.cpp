#include "dadu/service/ik_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "dadu/platform/timer.hpp"

namespace dadu::service {
namespace {

using Clock = std::chrono::steady_clock;

double msBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

IkService::IkService(SolverFactory factory, ServiceConfig config)
    : config_(config),
      factory_(std::move(factory)),
      queue_(config.queue_capacity),
      cache_(config.cache),
      counters_(kCounterCount, config.stat_shards),
      queue_hist_(config.latency),
      solve_hist_(config.latency),
      e2e_hist_(config.latency) {
  if (!factory_) throw std::invalid_argument("IkService: null factory");
  std::size_t workers = config_.workers;
  if (workers == 0)
    workers = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

IkService::~IkService() { stop(Drain::kDrainPending); }

std::future<Response> IkService::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submitInternal(std::move(request),
                 [promise](Response&& response, std::exception_ptr error) {
                   if (error)
                     promise->set_exception(error);
                   else
                     promise->set_value(std::move(response));
                 });
  return future;
}

void IkService::submit(Request request, Completion done) {
  if (!done) throw std::invalid_argument("IkService::submit: null callback");
  submitInternal(
      std::move(request),
      [done = std::move(done)](Response&& response,
                               std::exception_ptr error) mutable {
        if (error) {
          // Callbacks have no exception channel: fold the solver
          // exception into a typed reject so the caller still hears
          // back exactly once.
          Response failed;
          failed.status = ResponseStatus::kRejected;
          failed.reject_reason = RejectReason::kInternalError;
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            failed.message = e.what();
          } catch (...) {
            failed.message = "unknown solver exception";
          }
          done(std::move(failed));
        } else {
          done(std::move(response));
        }
      });
}

void IkService::submitInternal(Request request, JobCompletion finish) {
  counters_.add(kSubmitted);

  Job job;
  job.enqueued = Clock::now();
  if (request.deadline_ms > 0.0) {
    job.deadline =
        job.enqueued + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               request.deadline_ms));
    job.has_deadline = true;
  }
  job.request = std::move(request);
  job.finish = std::move(finish);

  switch (queue_.tryPush(std::move(job))) {
    case PushResult::kAccepted:
      break;
    case PushResult::kFull:
      // tryPush did not move from `job` — fail its completion here.
      rejectNow(job.finish, RejectReason::kQueueFull);
      break;
    case PushResult::kClosed:
      rejectNow(job.finish, RejectReason::kShutdown);
      break;
  }
}

void IkService::rejectNow(JobCompletion& finish, RejectReason reason) {
  counters_.add(reason == RejectReason::kQueueFull ? kRejectedQueueFull
                                                   : kRejectedShutdown);
  Response response;
  response.status = ResponseStatus::kRejected;
  response.reject_reason = reason;
  finish(std::move(response), nullptr);
}

void IkService::workerLoop() {
  const std::unique_ptr<ik::IkSolver> solver = factory_();
  Job job;
  while (queue_.pop(job)) {
    // Discard-mode shutdown: anything dequeued after the discard flag
    // is up gets rejected, never solved.  Without this check a worker
    // racing stop()'s close()->drain() window could still execute
    // pending work the caller asked to be dropped.
    if (discard_.load(std::memory_order_acquire)) {
      rejectNow(job.finish, RejectReason::kShutdown);
      continue;
    }
    process(*solver, std::move(job));
  }
}

void IkService::process(ik::IkSolver& solver, Job job) {
  const Clock::time_point picked_up = Clock::now();
  const double queue_ms = msBetween(job.enqueued, picked_up);
  obs::ObsSink* const sink = config_.sink.get();

  if (job.has_deadline && picked_up > job.deadline) {
    counters_.add(kDeadlineExpired);
    if (sink) sink->onCount("deadline_expired", 1);
    Response response;
    response.status = ResponseStatus::kDeadlineExceeded;
    response.queue_ms = queue_ms;
    job.finish(std::move(response), nullptr);
    return;
  }

  // Seed selection: explicit seed, cache hit (preferred when allowed),
  // or the chain's zero configuration as the empty-seed default.
  const bool cache_allowed =
      config_.enable_seed_cache && job.request.use_seed_cache;
  linalg::VecX seed;
  bool from_cache = false;
  if (cache_allowed && cache_.lookup(job.request.target, seed)) {
    from_cache = true;
  } else if (!job.request.seed.empty()) {
    seed = std::move(job.request.seed);
  } else {
    seed = solver.chain().zeroConfiguration();
  }

  try {
    platform::WallTimer timer;
    ik::SolveResult result = solver.solve(job.request.target, seed);
    const double solve_ms = timer.elapsedMs();

    if (result.converged() && cache_allowed)
      cache_.insert(job.request.target, result.theta);

    // Lock-free bookkeeping: relaxed sharded counters + histograms.
    counters_.add(kSolved);
    if (result.converged()) counters_.add(kConverged);
    counters_.add(kIterations, static_cast<std::uint64_t>(result.iterations));
    counters_.add(kFkEvaluations,
                  static_cast<std::uint64_t>(result.fk_evaluations));
    counters_.add(kSpeculationLoad,
                  static_cast<std::uint64_t>(result.speculation_load));
    queue_hist_.record(queue_ms);
    solve_hist_.record(solve_ms);
    e2e_hist_.record(queue_ms + solve_ms);

    if (sink) {
      sink->onSpan("queue", queue_ms);
      sink->onSpan("solve", solve_ms);
      sink->onCount("iterations", static_cast<std::uint64_t>(result.iterations));
      sink->onCount("fk_evaluations",
                    static_cast<std::uint64_t>(result.fk_evaluations));
      sink->onCount("speculation_load",
                    static_cast<std::uint64_t>(result.speculation_load));
    }

    Response response;
    response.status = ResponseStatus::kSolved;
    response.result = std::move(result);
    response.queue_ms = queue_ms;
    response.solve_ms = solve_ms;
    response.seeded_from_cache = from_cache;
    job.finish(std::move(response), nullptr);
  } catch (...) {
    // Solver precondition failures (seed-size mismatch, non-finite
    // target) surface through the completion, not the worker thread.
    Response failed;
    job.finish(std::move(failed), std::current_exception());
  }
}

void IkService::stop(Drain mode) {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopped_.store(true);
  // Order matters for discard: raise the flag BEFORE closing the
  // queue.  A worker that pops a job after close() then observes
  // discard_ and rejects instead of solving; stop()'s own drain below
  // rejects whatever the workers never touched.  Either way no pending
  // job is executed after a discard stop.
  if (mode == Drain::kDiscardPending)
    discard_.store(true, std::memory_order_release);
  queue_.close();
  if (config_.after_close_hook) config_.after_close_hook();
  if (mode == Drain::kDiscardPending) {
    for (Job& job : queue_.drain())
      rejectNow(job.finish, RejectReason::kShutdown);
  }
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

ServiceStats IkService::stats() const {
  const std::vector<std::uint64_t> totals = counters_.snapshot();
  ServiceStats snapshot;
  snapshot.submitted = totals[kSubmitted];
  snapshot.rejected_queue_full = totals[kRejectedQueueFull];
  snapshot.rejected_shutdown = totals[kRejectedShutdown];
  snapshot.deadline_expired = totals[kDeadlineExpired];
  snapshot.solved = totals[kSolved];
  snapshot.converged = totals[kConverged];
  snapshot.total_iterations = static_cast<long long>(totals[kIterations]);
  snapshot.total_fk_evaluations =
      static_cast<long long>(totals[kFkEvaluations]);
  snapshot.total_speculation_load =
      static_cast<long long>(totals[kSpeculationLoad]);

  snapshot.queue_hist = queue_hist_.snapshot();
  snapshot.solve_hist = solve_hist_.snapshot();
  snapshot.e2e_hist = e2e_hist_.snapshot();
  snapshot.total_queue_ms = snapshot.queue_hist.sum;
  snapshot.total_solve_ms = snapshot.solve_hist.sum;

  const SeedCacheStats cache = cache_.stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_inserts = cache.inserts;
  snapshot.cache_evictions = cache.evictions;
  return snapshot;
}

}  // namespace dadu::service
