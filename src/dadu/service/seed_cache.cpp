#include "dadu/service/seed_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dadu::service {
namespace {

/// SplitMix64 finalizer: cheap, well-mixed 64-bit hash for cell keys.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix each axis before combining so neighbouring cells land in
/// unrelated buckets (and shards).
std::uint64_t mixCoord(std::int64_t ix, std::int64_t iy, std::int64_t iz) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(ix));
  h = mix64(h ^ static_cast<std::uint64_t>(iy));
  h = mix64(h ^ static_cast<std::uint64_t>(iz));
  return h;
}

}  // namespace

std::size_t SeedCache::CellHash::operator()(const CellCoord& c) const {
  return static_cast<std::size_t>(mixCoord(c.ix, c.iy, c.iz) & mask);
}

SeedCache::SeedCache(SeedCacheConfig config) : config_(config) {
  if (!(config_.cell_size > 0.0))
    throw std::invalid_argument("SeedCache: cell_size must be > 0");
  if (!(config_.max_distance >= 0.0))
    throw std::invalid_argument("SeedCache: max_distance must be >= 0");
  config_.shards = std::max<std::size_t>(config_.shards, 1);
  config_.max_entries_per_cell =
      std::max<std::size_t>(config_.max_entries_per_cell, 1);
  config_.hash_bits = std::min(config_.hash_bits, 64u);
  hash_mask_ = config_.hash_bits >= 64
                   ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << config_.hash_bits) - 1);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Seed the map with the truncating hasher (test seam; identity in
    // production where hash_bits is 64).
    shard->cells = std::unordered_map<CellCoord, Cell, CellHash>(
        /*bucket_count=*/8, CellHash{hash_mask_});
    shards_.push_back(std::move(shard));
  }
}

std::int64_t SeedCache::quantize(double v) const {
  return static_cast<std::int64_t>(std::floor(v / config_.cell_size));
}

SeedCache::CellCoord SeedCache::cellOf(const linalg::Vec3& p) const {
  return {quantize(p.x), quantize(p.y), quantize(p.z)};
}

std::uint64_t SeedCache::cellHash(const CellCoord& c) const {
  return mixCoord(c.ix, c.iy, c.iz) & hash_mask_;
}

SeedCache::Shard& SeedCache::shardFor(const CellCoord& c) const {
  // Shard choice rides the (possibly truncated) hash: collisions here
  // are harmless — they only co-locate two cells behind one mutex.
  return *shards_[cellHash(c) % shards_.size()];
}

void SeedCache::probeCell(const CellCoord& coord, const linalg::Vec3& target,
                          double& best_d2, linalg::VecX& seed,
                          bool& found) const {
  Shard& shard = shardFor(coord);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.cells.find(coord);
  if (it == shard.cells.end()) return;
  for (const Entry& e : it->second.entries) {
    const double d2 = (e.target - target).squaredNorm();
    if (d2 < best_d2) {
      best_d2 = d2;
      seed = e.theta;
      found = true;
    }
  }
}

bool SeedCache::lookup(const linalg::Vec3& target, linalg::VecX& seed) const {
  const CellCoord home = cellOf(target);

  double best_d2 = config_.max_distance * config_.max_distance;
  // Accept entries *at* max_distance too (strict-less in probeCell
  // would reject an exact-radius tie); widen by the smallest usable
  // epsilon.
  best_d2 = std::nextafter(best_d2, best_d2 + 1.0);
  bool found = false;

  if (config_.search_neighbors) {
    for (std::int64_t dx = -1; dx <= 1; ++dx)
      for (std::int64_t dy = -1; dy <= 1; ++dy)
        for (std::int64_t dz = -1; dz <= 1; ++dz)
          probeCell({home.ix + dx, home.iy + dy, home.iz + dz}, target,
                    best_d2, seed, found);
  } else {
    probeCell(home, target, best_d2, seed, found);
  }

  (found ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return found;
}

std::size_t SeedCache::lookupMany(const linalg::Vec3* targets,
                                  std::size_t count, linalg::VecX* seeds,
                                  unsigned char* hits) const {
  if (count == 0) return 0;

  double init_d2 = config_.max_distance * config_.max_distance;
  init_d2 = std::nextafter(init_d2, init_d2 + 1.0);
  std::vector<double> best_d2(count, init_d2);
  // Rank of the probe that supplied each query's current best — the
  // cell's position in lookup()'s (dx, dy, dz) probe order.  Probes
  // here execute in shard order instead, so on an exact-distance tie
  // between entries in different cells the rank decides, reproducing
  // "first probed cell wins" exactly.  (Within one cell, strict < on
  // d2 already keeps the earliest entry, as probeCell does.)
  constexpr std::uint32_t kNoRank = ~std::uint32_t{0};
  std::vector<std::uint32_t> best_rank(count, kNoRank);
  for (std::size_t q = 0; q < count; ++q) hits[q] = 0;

  // Bucket every (query, cell) probe by the shard that owns the cell.
  struct Probe {
    CellCoord coord;
    std::uint32_t query;
    std::uint32_t rank;
  };
  std::vector<std::vector<Probe>> by_shard(shards_.size());
  for (std::size_t q = 0; q < count; ++q) {
    const CellCoord home = cellOf(targets[q]);
    std::uint32_t rank = 0;
    const auto add = [&](const CellCoord& c) {
      by_shard[cellHash(c) % shards_.size()].push_back(
          {c, static_cast<std::uint32_t>(q), rank++});
    };
    if (config_.search_neighbors) {
      for (std::int64_t dx = -1; dx <= 1; ++dx)
        for (std::int64_t dy = -1; dy <= 1; ++dy)
          for (std::int64_t dz = -1; dz <= 1; ++dz)
            add({home.ix + dx, home.iy + dy, home.iz + dz});
    } else {
      add(home);
    }
  }

  // One lock per shard per burst; inside, the per-entry tightening is
  // exactly probeCell's, plus the rank tie-break.
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Probe& probe : by_shard[s]) {
      const auto it = shard.cells.find(probe.coord);
      if (it == shard.cells.end()) continue;
      for (const Entry& e : it->second.entries) {
        const double d2 = (e.target - targets[probe.query]).squaredNorm();
        if (d2 < best_d2[probe.query] ||
            (d2 == best_d2[probe.query] &&
             probe.rank < best_rank[probe.query])) {
          best_d2[probe.query] = d2;
          best_rank[probe.query] = probe.rank;
          seeds[probe.query] = e.theta;
          hits[probe.query] = 1;
        }
      }
    }
  }

  std::size_t hit_count = 0;
  for (std::size_t q = 0; q < count; ++q) hit_count += hits[q];
  hits_.fetch_add(hit_count, std::memory_order_relaxed);
  misses_.fetch_add(count - hit_count, std::memory_order_relaxed);
  return hit_count;
}

void SeedCache::insert(const linalg::Vec3& target, const linalg::VecX& theta) {
  const CellCoord coord = cellOf(target);
  Shard& shard = shardFor(coord);
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    Cell& cell = shard.cells[coord];
    if (cell.entries.size() < config_.max_entries_per_cell) {
      cell.entries.push_back({target, theta});
    } else {
      // Ring replacement: overwrite the oldest slot.  Keeps the cell
      // fresh under sustained traffic without per-entry timestamps.
      cell.entries[cell.next_slot] = {target, theta};
      cell.next_slot = (cell.next_slot + 1) % config_.max_entries_per_cell;
      evicted = true;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
}

SeedCacheStats SeedCache::stats() const {
  SeedCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SeedCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, cell] : shard->cells) total += cell.entries.size();
  }
  return total;
}

void SeedCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cells.clear();
  }
}

}  // namespace dadu::service
