#include "dadu/service/queue.hpp"

#include <algorithm>
#include <utility>

namespace dadu::service {

BoundedQueue::BoundedQueue(std::size_t capacity, const platform::Clock* clock)
    : capacity_(std::max<std::size_t>(capacity, 1)), clock_(clock) {}

PushResult BoundedQueue::tryPush(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (jobs_.size() >= capacity_) return PushResult::kFull;
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
  return PushResult::kAccepted;
}

bool BoundedQueue::pop(Job& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained
  out = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

std::size_t BoundedQueue::popMany(std::vector<Job>& out,
                                  std::size_t max_items,
                                  std::chrono::microseconds max_wait) {
  out.clear();
  if (max_items == 0) return 0;
  const auto take = [&] {
    while (!jobs_.empty() && out.size() < max_items) {
      out.push_back(std::move(jobs_.front()));
      jobs_.pop_front();
    }
  };

  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return 0;  // closed and drained
  take();

  // Coalescing window: whatever was ready went first (no added latency
  // for a deep queue); only an under-filled burst waits for company.
  // Taking immediately before any further wait keeps the usual
  // condition-variable invariant — nobody sleeps while work is queued.
  if (out.size() < max_items && max_wait.count() > 0 && !closed_) {
    const auto deadline = platform::clockNow(clock_) + max_wait;
    while (out.size() < max_items && !closed_) {
      if (!cv_.wait_until(lock, deadline,
                          [&] { return closed_ || !jobs_.empty(); }))
        break;  // window expired with nothing new
      take();
    }
  }
  return out.size();
}

bool BoundedQueue::tryPop(Job& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (jobs_.empty()) return false;
  out = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

std::size_t BoundedQueue::tryPopMany(std::vector<Job>& out,
                                     std::size_t max_items) {
  out.clear();
  if (max_items == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  while (!jobs_.empty() && out.size() < max_items) {
    out.push_back(std::move(jobs_.front()));
    jobs_.pop_front();
  }
  return out.size();
}

void BoundedQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<Job> BoundedQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Job> out;
  out.reserve(jobs_.size());
  while (!jobs_.empty()) {
    out.push_back(std::move(jobs_.front()));
    jobs_.pop_front();
  }
  return out;
}

std::size_t BoundedQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

bool BoundedQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace dadu::service
