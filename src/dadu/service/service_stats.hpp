// Aggregate serving-layer statistics (snapshot type).
//
// IkService keeps live counters internally (one mutex, touched once
// per submit/solve — nanoseconds against millisecond solves) and
// copies them out through stats(); this header defines the snapshot a
// caller sees.  Cache counters are mirrored from the SeedCache so one
// struct answers "how is the service doing".
#pragma once

#include <cstdint>

namespace dadu::service {

struct ServiceStats {
  // Admission.
  std::uint64_t submitted = 0;           ///< submit() calls
  std::uint64_t rejected_queue_full = 0; ///< shed by admission control
  std::uint64_t rejected_shutdown = 0;   ///< submitted after / pending at stop
  std::uint64_t deadline_expired = 0;    ///< dropped unexecuted

  // Execution.
  std::uint64_t solved = 0;     ///< solver ran (any ik::Status)
  std::uint64_t converged = 0;  ///< ... and converged
  long long total_iterations = 0;  ///< summed over solved requests
  double total_queue_ms = 0.0;
  double total_solve_ms = 0.0;

  // Warm-start cache (mirrored from SeedCache::stats()).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;

  double meanQueueMs() const {
    return solved == 0 ? 0.0 : total_queue_ms / static_cast<double>(solved);
  }
  double meanSolveMs() const {
    return solved == 0 ? 0.0 : total_solve_ms / static_cast<double>(solved);
  }
  double meanIterations() const {
    return solved == 0
               ? 0.0
               : static_cast<double>(total_iterations) /
                     static_cast<double>(solved);
  }
  double cacheHitRate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
  double convergenceRate() const {
    return solved == 0
               ? 0.0
               : static_cast<double>(converged) / static_cast<double>(solved);
  }
};

}  // namespace dadu::service
