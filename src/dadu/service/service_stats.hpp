// Aggregate serving-layer statistics (snapshot type).
//
// IkService keeps its live counters in lock-free sharded slots
// (obs::ShardedCounters) and its latency distributions in log-bucket
// histograms (obs::LatencyHistogram); stats() aggregates both into this
// snapshot.  Cache counters are mirrored from the SeedCache so one
// struct answers "how is the service doing" — totals, rates, and the
// queue/solve/end-to-end latency distributions with percentiles.
#pragma once

#include <cstdint>
#include <string>

#include "dadu/obs/export.hpp"
#include "dadu/obs/histogram.hpp"
#include "dadu/service/circuit_breaker.hpp"

namespace dadu::service {

struct ServiceStats {
  // Admission.
  std::uint64_t submitted = 0;           ///< submit() calls
  std::uint64_t rejected_queue_full = 0; ///< shed by admission control
  std::uint64_t rejected_shutdown = 0;   ///< submitted after / pending at stop
  std::uint64_t rejected_overloaded = 0; ///< breaker Open fast-rejects
  std::uint64_t shed_low_priority = 0;   ///< Priority::kLow shed while Closed
  std::uint64_t deadline_expired = 0;    ///< dropped unexecuted

  // Execution.
  std::uint64_t solved = 0;     ///< solver ran (any ik::Status)
  std::uint64_t converged = 0;  ///< ... and converged
  std::uint64_t timed_out = 0;  ///< watchdog stops (ik::Status::kTimedOut)
  std::uint64_t internal_errors = 0;  ///< solver threw mid-request
  /// Every submit ends in exactly one terminal bucket; this is that
  /// sum, so `submitted == accounted()` is the no-lost-request
  /// invariant the chaos soak asserts.
  std::uint64_t accounted() const {
    return solved + rejected_queue_full + rejected_shutdown +
           rejected_overloaded + shed_low_priority + deadline_expired +
           internal_errors;
  }
  long long total_iterations = 0;  ///< summed over solved requests
  long long total_fk_evaluations = 0;   ///< FK passes incl. speculative
  long long total_speculation_load = 0; ///< Fig. 5b load, summed
  double total_queue_ms = 0.0;
  double total_solve_ms = 0.0;

  // Batched dispatch (zero when the service runs per-request).
  std::uint64_t batches = 0;        ///< coalesced bursts dispatched
  std::uint64_t batched_lanes = 0;  ///< requests carried by those bursts

  // Latency distributions (solved requests; end-to-end = queue + solve).
  obs::HistogramSnapshot queue_hist;
  obs::HistogramSnapshot solve_hist;
  obs::HistogramSnapshot e2e_hist;
  /// Requests per coalesced burst (batched dispatch only): occupancy
  /// p50 pinned at 1 under load means coalescing is not engaging.
  obs::HistogramSnapshot batch_occupancy_hist;

  // Overload circuit breaker (mirrored from CircuitBreaker::snapshot()).
  CircuitBreakerSnapshot breaker;

  /// Active speculation backend ("scalar" / "avx2" / "avx512") the
  /// solvers' batched FK dispatched to; empty when unknown (e.g. a
  /// hand-built snapshot).  Exported as an info metric.
  std::string spec_backend;

  // Warm-start cache (mirrored from SeedCache::stats()).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;  ///< ring-replaced entries

  double meanQueueMs() const {
    return solved == 0 ? 0.0 : total_queue_ms / static_cast<double>(solved);
  }
  double meanSolveMs() const {
    return solved == 0 ? 0.0 : total_solve_ms / static_cast<double>(solved);
  }
  double meanIterations() const {
    return solved == 0
               ? 0.0
               : static_cast<double>(total_iterations) /
                     static_cast<double>(solved);
  }
  double cacheHitRate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
  double convergenceRate() const {
    return solved == 0
               ? 0.0
               : static_cast<double>(converged) / static_cast<double>(solved);
  }
  double meanBatchOccupancy() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(batched_lanes) /
                     static_cast<double>(batches);
  }
};

/// Flatten a stats snapshot into the exporter model (counter samples,
/// derived gauges, the three latency histograms) under the
/// `dadu_service_` metric prefix.  Feed the result to
/// obs::renderPrometheus / renderJson / renderText.
obs::MetricsSnapshot toMetricsSnapshot(const ServiceStats& stats);

}  // namespace dadu::service
