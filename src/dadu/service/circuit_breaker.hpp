// Overload circuit breaker for the IK serving layer.
//
// Admission control (the bounded queue) protects the service from a
// *burst*; the breaker protects it from *sustained* overload, where
// rejecting at capacity still leaves every accepted request with
// pathological latency.  Classic three-state machine:
//
//   Closed ──(queue depth >= trip_queue_depth, or rolling solve-latency
//             p99 > trip_p99_ms)──▶ Open
//   Open ──(open_ms elapsed)──▶ HalfOpen
//   HalfOpen ──(half_open_probes consecutive probe successes)──▶ Closed
//   HalfOpen ──(any probe failure)──▶ Open          (fresh open window)
//
// While Open every submit is fast-rejected (Rejected{kOverloaded})
// without touching the queue — callers hear "back off" in microseconds
// instead of waiting out a doomed deadline.  While HalfOpen up to
// `half_open_probes` requests are admitted as probes; their outcomes
// decide whether the service has recovered.  Independently of the trip
// machinery, Closed-state admission sheds Priority::kLow work once the
// queue passes `shed_queue_depth` — low-priority traffic is the first
// ballast overboard, before the breaker ever trips.
//
// All transitions happen under one mutex taken at submit time and once
// per completed solve; against solves that are hundreds of microseconds
// the lock is noise, and it keeps the state machine trivially
// TSan-clean (same trade the BoundedQueue makes).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "dadu/service/request.hpp"

namespace dadu::service {

struct CircuitBreakerConfig {
  bool enabled = false;  ///< disabled = zero overhead, always admit
  /// Trip to Open when the queue depth observed at submit reaches this
  /// (0 = queue-depth tripping off).
  std::size_t trip_queue_depth = 0;
  /// Trip to Open when the rolling p99 of solve latency exceeds this
  /// (0 = latency tripping off).
  double trip_p99_ms = 0.0;
  std::size_t latency_window = 128;  ///< rolling solve-latency samples
  std::size_t min_samples = 32;      ///< window fill required before p99 trips
  double open_ms = 100.0;            ///< fast-reject period before probing
  std::size_t half_open_probes = 4;  ///< consecutive successes to close
  /// Shed Priority::kLow requests while Closed once the queue depth
  /// reaches this (0 = shedding off).  Should sit below
  /// trip_queue_depth so shedding engages first.
  std::size_t shed_queue_depth = 0;
};

/// Exported breaker state (see ServiceStats / the metrics dump).
struct CircuitBreakerSnapshot {
  int state = 0;  ///< 0 = Closed, 1 = Open, 2 = HalfOpen
  std::uint64_t trips = 0;          ///< Closed/HalfOpen -> Open transitions
  std::uint64_t probes_issued = 0;  ///< HalfOpen admissions
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  /// Submit-time verdict.
  enum class Admit {
    kAccept,      ///< pass through to the queue
    kProbe,       ///< pass through, flagged as a half-open probe
    kRejectOpen,  ///< fast-reject: breaker is (or just tripped) Open
    kShedLow,     ///< reject: low-priority load shed while Closed
  };

  explicit CircuitBreaker(CircuitBreakerConfig config);

  /// Decide admission for one request.  `queue_depth` is the depth the
  /// submitter observed; `now` its submission timestamp.  May trip the
  /// breaker (depth criterion) or transition Open -> HalfOpen.
  Admit admit(Priority priority, std::size_t queue_depth,
              Clock::time_point now);

  /// Feed one completed solve's latency into the rolling window (may
  /// trip on the p99 criterion, Closed state only).
  void recordSolve(double solve_ms, Clock::time_point now);

  /// Report the fate of a request admitted as kProbe.  Failure (solver
  /// exception, watchdog timeout, or the probe never executing) reopens
  /// the breaker; `half_open_probes` successes close it.  Stale
  /// results from a previous half-open episode are ignored.
  void onProbeResult(bool success, Clock::time_point now);

  State state() const;
  CircuitBreakerSnapshot snapshot() const;
  bool enabled() const { return config_.enabled; }
  const CircuitBreakerConfig& config() const { return config_; }

 private:
  void tripLocked(Clock::time_point now);
  double p99Locked() const;

  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  Clock::time_point opened_at_{};
  std::vector<double> window_;  ///< ring buffer of solve latencies
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t probes_outstanding_ = 0;
  std::size_t probe_successes_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t probes_issued_ = 0;
};

}  // namespace dadu::service
