#include "dadu/service/service_stats.hpp"

namespace dadu::service {

obs::MetricsSnapshot toMetricsSnapshot(const ServiceStats& stats) {
  obs::MetricsSnapshot snap;
  if (!stats.spec_backend.empty())
    snap.infos.push_back({"dadu_spec_backend", stats.spec_backend});
  const auto counter = [&](const char* name, std::uint64_t value) {
    snap.counters.push_back({std::string("dadu_service_") + name, value});
  };
  counter("submitted", stats.submitted);
  counter("rejected_queue_full", stats.rejected_queue_full);
  counter("rejected_shutdown", stats.rejected_shutdown);
  counter("rejected_overloaded", stats.rejected_overloaded);
  counter("shed_low_priority", stats.shed_low_priority);
  counter("deadline_expired", stats.deadline_expired);
  counter("solved", stats.solved);
  counter("converged", stats.converged);
  counter("timed_out", stats.timed_out);
  counter("internal_errors", stats.internal_errors);
  counter("breaker_trips", stats.breaker.trips);
  counter("breaker_probes", stats.breaker.probes_issued);
  counter("iterations", static_cast<std::uint64_t>(stats.total_iterations));
  counter("fk_evaluations",
          static_cast<std::uint64_t>(stats.total_fk_evaluations));
  counter("speculation_load",
          static_cast<std::uint64_t>(stats.total_speculation_load));
  counter("batches", stats.batches);
  counter("batched_lanes", stats.batched_lanes);
  counter("cache_hits", stats.cache_hits);
  counter("cache_misses", stats.cache_misses);
  counter("cache_inserts", stats.cache_inserts);
  counter("cache_evictions", stats.cache_evictions);

  snap.gauges.push_back(
      {"dadu_service_convergence_rate", stats.convergenceRate(), "ratio"});
  snap.gauges.push_back(
      {"dadu_service_cache_hit_rate", stats.cacheHitRate(), "ratio"});
  snap.gauges.push_back(
      {"dadu_service_mean_iterations", stats.meanIterations(), "iters"});
  snap.gauges.push_back({"dadu_service_breaker_state",
                         static_cast<double>(stats.breaker.state), "state"});
  snap.gauges.push_back({"dadu_service_batch_mean_occupancy",
                         stats.meanBatchOccupancy(), "requests"});

  snap.histograms.push_back(
      {"dadu_service_queue_ms", stats.queue_hist, "ms"});
  snap.histograms.push_back(
      {"dadu_service_solve_ms", stats.solve_hist, "ms"});
  snap.histograms.push_back({"dadu_service_e2e_ms", stats.e2e_hist, "ms"});
  snap.histograms.push_back({"dadu_service_batch_occupancy",
                             stats.batch_occupancy_hist, "requests"});
  return snap;
}

}  // namespace dadu::service
