// IkService: a long-lived, asynchronous IK serving layer.
//
// Every pre-existing entry point (IkEngine::solveBatch,
// dadu::solveBatchParallel) is a synchronous one-shot call that spins
// up threads per invocation and forgets everything between calls.  The
// service is the opposite: construct once, submit() any number of
// requests from any number of threads, get a future per request.
//
//   - worker pool: `workers` threads, each owning a private solver
//     built by the caller's factory (solvers carry per-solve
//     workspaces and are not thread-safe by design — same contract as
//     the batch runner);
//   - admission control: a bounded MPMC queue; a full queue rejects at
//     submit() with Rejected{QueueFull} instead of blocking forever;
//   - per-request deadlines: a request still queued past its deadline
//     is dropped unexecuted and reported as DeadlineExceeded;
//   - warm-start seed cache: converged solutions are indexed by
//     workspace target; a request whose target lands near a cached
//     solution is seeded from it (typically collapsing the iteration
//     count) and converged results are inserted back;
//   - observability: counters live in lock-free sharded slots
//     (obs::ShardedCounters), latency distributions in log-bucket
//     histograms (queue / solve / end-to-end) — the submit and solve
//     hot paths take no lock for bookkeeping.  An optional ObsSink
//     receives per-event spans (queue wait, solve) and solver-level
//     counters (iterations, FK evaluations, speculation load).
//
// Completion model: the native submit path takes a completion callback
// invoked exactly once from whichever thread finishes the request (a
// worker, the submitter on admission reject, the stop() caller on a
// discard drain).  Event-driven callers — the dadu_net TCP server —
// use it directly so no thread ever parks on a future; the
// future-returning submit overload is a thin wrapper that fulfills a
// promise from the callback.
//
// Thread-safety contract: submit(), stats(), queueDepth() are safe
// from any thread.  stop() may be called from any one thread (and is
// idempotent); the destructor stops with drain semantics.  Futures may
// be waited on from anywhere; each resolves exactly once.  Completion
// callbacks must be thread-safe with respect to their own captures and
// must not block for long (they run on the worker hot path) nor call
// stop() (deadlock: stop() joins the calling worker).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dadu/obs/histogram.hpp"
#include "dadu/obs/sharded_counters.hpp"
#include "dadu/obs/sink.hpp"
#include "dadu/platform/clock.hpp"
#include "dadu/platform/executor.hpp"
#include "dadu/service/circuit_breaker.hpp"
#include "dadu/service/queue.hpp"
#include "dadu/service/request.hpp"
#include "dadu/service/seed_cache.hpp"
#include "dadu/service/service_stats.hpp"
#include "dadu/solvers/ik_solver.hpp"

namespace dadu::service {

/// Factory producing one solver instance per worker.  Called once from
/// each worker thread at startup — it must be safe to invoke
/// concurrently (same contract as the batch runner's factory).
using SolverFactory = std::function<std::unique_ptr<ik::IkSolver>()>;

struct ServiceConfig {
  std::size_t workers = 0;          ///< 0 = hardware concurrency
  std::size_t queue_capacity = 1024;
  bool enable_seed_cache = true;
  SeedCacheConfig cache;
  /// Stat shards for the lock-free counters (0 = sized to hardware
  /// concurrency).  More shards = less cross-worker cache traffic.
  std::size_t stat_shards = 0;
  /// Bucket ladder shared by the queue/solve/end-to-end histograms.
  obs::LatencyHistogram::Config latency;
  /// Optional per-event sink (trace spans + solver counters).  Null =
  /// no per-event overhead beyond one branch.  Must be thread-safe.
  std::shared_ptr<obs::ObsSink> sink;
  /// Overload circuit breaker (disabled by default — zero overhead).
  /// See circuit_breaker.hpp for the state machine and thresholds.
  CircuitBreakerConfig breaker;
  /// Batch coalescer: each worker drains up to `max_batch` queued
  /// requests in one BoundedQueue::popMany and runs them through the
  /// solver's fused solveMany path (one grouped SoA speculation sweep
  /// for the whole burst).  1 = per-request dispatch (the legacy
  /// one-pop-one-solve loop).  Per-request semantics are identical
  /// either way — same Response statuses, per-lane deadlines and fault
  /// points — batching only changes how work is amortized.
  std::size_t max_batch = 1;
  /// Nagle-style coalescing window in microseconds: an under-filled
  /// burst lingers up to this long for stragglers before solving.
  /// Whatever is already queued is taken without any added latency; 0
  /// disables the wait entirely.  Only meaningful with max_batch > 1.
  std::uint32_t batch_wait_us = 0;
  /// Test seam: invoked by stop() between closing the queue and
  /// draining it — the race window the discard path must tolerate.
  /// Never set in production.
  std::function<void()> after_close_hook;
  /// Clock seam (null = real steady clock).  Every timestamp the
  /// service takes — enqueue stamps, deadline arithmetic, breaker
  /// feeds, queue/solve/e2e latencies, the solver watchdog — reads
  /// this clock, so the whole service runs under virtual time when the
  /// deterministic simulation harness provides a SimClock.  Production
  /// cost: one branch + virtual call on paths that already pay a
  /// syscall for the real clock read.
  const platform::Clock* clock = nullptr;
  /// Execution seam (null = OS worker threads, the production path).
  /// With an executor the service spawns NO threads: `workers` becomes
  /// a count of cooperative logical workers whose dispatch steps are
  /// posted as executor tasks, and the popMany linger window becomes a
  /// postAt timer instead of a parked condition variable.  Per-request
  /// semantics (admission, deadlines, breaker, batching, statuses) are
  /// identical.  Single-threaded by contract: submit/stop must be
  /// called from the executor's thread, and the executor must outlive
  /// the service.
  platform::Executor* executor = nullptr;
};

class IkService {
 public:
  /// Starts the worker pool immediately.  Throws std::invalid_argument
  /// on a null factory.
  explicit IkService(SolverFactory factory, ServiceConfig config = {});
  ~IkService();  ///< stop(Drain::kDrainPending)

  IkService(const IkService&) = delete;
  IkService& operator=(const IkService&) = delete;

  /// Completion invoked exactly once per submitted request.  Solver
  /// exceptions arrive as Rejected{kInternalError} with the what() text
  /// in Response::message (callbacks have no exception channel).
  using Completion = std::function<void(Response)>;

  /// Submit one request; never blocks.  The future resolves to a
  /// Response: kSolved once a worker ran the solver, or an immediate
  /// Rejected{QueueFull}/Rejected{Shutdown} when admission fails, or
  /// kDeadlineExceeded if the deadline passed while queued.  Solver
  /// exceptions rethrow from future::get().
  std::future<Response> submit(Request request);

  /// Callback flavour of submit(): identical admission, deadline and
  /// solve semantics (bit-identical Response for the same request),
  /// but the outcome is delivered by invoking `done` instead of
  /// resolving a future — no thread ever blocks waiting.  `done` may
  /// run on the submitting thread (admission rejects) or a worker.
  /// Throws std::invalid_argument on a null callback.
  void submit(Request request, Completion done);

  /// What happens to still-queued requests at stop().
  enum class Drain {
    kDrainPending,    ///< workers finish every queued request first
    kDiscardPending,  ///< queued requests resolve Rejected{Shutdown} now
  };

  /// Close admission, handle queued requests per `mode`, join workers.
  /// Idempotent; concurrent callers serialize, later modes are no-ops.
  /// In-flight solves always run to completion.  In discard mode a
  /// request a worker dequeues after the close is rejected without
  /// solving — pending work is never executed past a discard stop.
  void stop(Drain mode = Drain::kDrainPending);
  bool stopped() const { return stopped_.load(); }

  ServiceStats stats() const;
  /// stats() flattened for the exporters (Prometheus / JSON / text).
  obs::MetricsSnapshot metrics() const { return toMetricsSnapshot(stats()); }
  const SeedCache& seedCache() const { return cache_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  std::size_t workerCount() const {
    return config_.executor ? coop_workers_.size() : workers_.size();
  }
  std::size_t queueDepth() const { return queue_.size(); }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Logical counter ids for the sharded stat slots.
  enum Counter : std::size_t {
    kSubmitted,
    kRejectedQueueFull,
    kRejectedShutdown,
    kRejectedOverloaded,
    kShedLowPriority,
    kDeadlineExpired,
    kSolved,
    kConverged,
    kTimedOutSolves,
    kInternalErrors,
    kIterations,
    kFkEvaluations,
    kSpeculationLoad,
    kBatches,       ///< coalesced bursts dispatched (batched path only)
    kBatchedLanes,  ///< requests carried by those bursts
    kCounterCount,
  };

  /// Per-worker scratch for the batched dispatch path, reused across
  /// bursts so a warm worker allocates nothing per burst.
  struct BatchScratch {
    std::vector<Job> burst;
    std::vector<unsigned char> live;  ///< still headed for the solver
    std::vector<double> queue_ms;
    std::vector<double> fault_ms;  ///< service.worker.solve delay charge
    std::vector<linalg::VecX> seeds;
    std::vector<unsigned char> from_cache;
    std::vector<linalg::Vec3> cache_targets;
    std::vector<std::size_t> cache_slots;
    std::vector<unsigned char> cache_hits;
    std::vector<linalg::VecX> probe_seeds;
    std::vector<ik::BatchLane> lanes;
    std::vector<ik::BatchLaneResult> outcomes;
    std::vector<std::size_t> lane_job;  ///< lane index -> burst index
  };

  /// One cooperative logical worker (executor mode): the state a
  /// workerLoop() thread keeps on its stack, parked in a struct
  /// between posted dispatch steps.
  struct CoopWorker {
    std::unique_ptr<ik::IkSolver> solver;  ///< created on first step
    BatchScratch scratch;
    bool busy = false;       ///< a step is posted or running
    bool lingering = false;  ///< parked on the batch_wait_us timer
    /// Invalidates stale posted steps (a lingering worker woken early
    /// by a full queue must ignore its original timer firing).
    std::uint64_t generation = 0;
  };

  platform::Clock::time_point now() const {
    return platform::clockNow(config_.clock);
  }

  void submitInternal(Request request, JobCompletion finish);
  void workerLoop();
  void process(ik::IkSolver& solver, Job job);
  void processBatch(ik::IkSolver& solver, BatchScratch& scratch);
  void rejectNow(JobCompletion& finish, RejectReason reason);
  /// Reject a job that may be a half-open probe: the breaker hears a
  /// probe failure ("never executed"), then the completion fires.
  void rejectJob(Job& job, RejectReason reason);
  /// Executor mode: post dispatch steps for idle workers while work is
  /// queued (and wake a lingering worker once a full burst is ready).
  void scheduleCoopWorkers();
  /// Executor mode: one worker dispatch step — the body of one
  /// workerLoop() wakeup, re-posting itself while work remains.
  void coopStep(std::size_t worker, std::uint64_t generation);
  ik::IkSolver& coopSolver(CoopWorker& w);

  ServiceConfig config_;
  SolverFactory factory_;
  BoundedQueue queue_;
  SeedCache cache_;
  CircuitBreaker breaker_;
  std::vector<std::thread> workers_;
  std::vector<CoopWorker> coop_workers_;  ///< executor mode only

  std::atomic<bool> stopped_{false};
  /// Discard-mode shutdown: set (before the queue closes) to tell
  /// workers to reject anything they dequeue from then on instead of
  /// solving it.  Fixes the close()->drain() race where a worker could
  /// pop and *solve* a pending job that discard semantics promised to
  /// fail fast.
  std::atomic<bool> discard_{false};
  std::mutex stop_mutex_;  ///< serializes stop() / joins

  // Lock-free statistics: sharded counters + latency histograms, all
  // written with relaxed atomics on the hot path, aggregated in
  // stats().  No mutex anywhere on submit/process.
  obs::ShardedCounters counters_;
  obs::LatencyHistogram queue_hist_;
  obs::LatencyHistogram solve_hist_;
  obs::LatencyHistogram e2e_hist_;
  /// Burst occupancy (requests per popMany, batched path only): the
  /// one distribution that says whether coalescing is actually
  /// happening — p50 stuck at 1 under load means the window is too
  /// short or the queue never backs up.
  obs::LatencyHistogram batch_hist_;
};

}  // namespace dadu::service
