#include "dadu/service/request.hpp"

namespace dadu::service {

std::string toString(Priority p) {
  switch (p) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "unknown";
}

std::string toString(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kSolved:
      return "solved";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string toString(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kShutdown:
      return "shutdown";
    case RejectReason::kInternalError:
      return "internal-error";
    case RejectReason::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

}  // namespace dadu::service
