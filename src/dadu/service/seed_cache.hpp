// Warm-start seed cache: workspace target -> previously converged
// joint solution.
//
// IK iteration count is dominated by how far the seed is from a
// solution; trajectory_solver already exploits this per trajectory by
// seeding each waypoint with the previous solve.  The cache makes the
// same trick a *service-level* asset shared across independent
// requests: real traffic clusters (pick points, shelves, tool poses),
// so the converged theta of one request is an excellent seed for the
// next request nearby.
//
// Index structure: a uniform grid over workspace positions.  A target
// hashes to the cell containing it; lookup probes that cell (plus the
// 26 neighbours, so hits do not fall off a cliff at cell borders) and
// returns the entry nearest to the query within `max_distance`.  Cells
// live in shards, each with its own mutex and hash map — concurrent
// workers on different regions of the workspace never contend
// (mutex-striped, the classic concurrent-hash-map layout).  Each probe
// locks exactly one shard at a time, so there is no lock ordering to
// get wrong.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::service {

struct SeedCacheConfig {
  /// Grid cell edge (m).  Should be a few multiples of the solve
  /// accuracy: coarser cells raise hit rate but serve worse seeds.
  double cell_size = 0.05;
  /// Accept a cached entry only within this distance of the query (m).
  /// Defaults to the cell size so the home cell plus neighbours cover
  /// the whole acceptance ball.
  double max_distance = 0.05;
  /// Mutex stripes.  More shards = less contention; 16 is plenty for
  /// tens of workers.
  std::size_t shards = 16;
  /// Entries kept per cell (ring replacement beyond that): bounds the
  /// cache footprint under sustained traffic.
  std::size_t max_entries_per_cell = 4;
  /// Probe the 26 adjacent cells too (hit quality at cell borders at
  /// ~27x the probe cost of the home cell — still trivial vs a solve).
  bool search_neighbors = true;
  /// Test seam: keep only this many low bits of the mixed 64-bit cell
  /// hash (0..64; 64 = full hash).  Narrow widths force distinct cells
  /// to collide, exercising the coordinate-equality disambiguation —
  /// correctness never depends on the hash being collision-free.
  unsigned hash_bits = 64;
};

/// Monotonic counters (snapshot; see SeedCache::stats()).
struct SeedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;  ///< ring-replaced entries

  double hitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class SeedCache {
 public:
  explicit SeedCache(SeedCacheConfig config = {});

  SeedCache(const SeedCache&) = delete;
  SeedCache& operator=(const SeedCache&) = delete;

  /// Nearest cached solution within config.max_distance of `target`;
  /// writes it to `seed` and returns true on a hit.  Thread-safe.
  bool lookup(const linalg::Vec3& target, linalg::VecX& seed) const;

  /// Batched lookup for a coalesced request burst: the probes of all
  /// `count` targets are bucketed by shard first, then each shard's
  /// mutex is taken ONCE per burst (instead of once per cell probe per
  /// request — up to 27x count acquisitions).  On a hit, seeds[i]
  /// receives the nearest entry for targets[i] and hits[i] is set to 1,
  /// else 0.  Returns the number of hits.  Results match `count`
  /// individual lookup() calls against the same snapshot exactly,
  /// including exact-distance ties: probes execute shard-major here,
  /// but a per-probe rank reproduces lookup()'s cell probe order for
  /// tie-breaks.  Thread-safe.
  std::size_t lookupMany(const linalg::Vec3* targets, std::size_t count,
                         linalg::VecX* seeds, unsigned char* hits) const;

  /// Record a converged solution for `target`.  Thread-safe.
  void insert(const linalg::Vec3& target, const linalg::VecX& theta);

  SeedCacheStats stats() const;
  std::size_t size() const;  ///< total cached entries
  void clear();              ///< drop entries (stats are kept)

  const SeedCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    linalg::Vec3 target;
    linalg::VecX theta;
  };
  struct Cell {
    std::vector<Entry> entries;
    std::size_t next_slot = 0;  ///< ring replacement cursor
  };
  /// Exact quantized grid coordinates.  Cells are keyed by coordinate,
  /// not by hash: two distinct cells whose 64-bit hashes collide must
  /// stay distinct cells (hash collisions only cost a shared bucket,
  /// never aliased contents).
  struct CellCoord {
    std::int64_t ix = 0;
    std::int64_t iy = 0;
    std::int64_t iz = 0;
    bool operator==(const CellCoord& o) const {
      return ix == o.ix && iy == o.iy && iz == o.iz;
    }
  };
  struct CellHash {
    std::uint64_t mask;  ///< hash_bits truncation
    CellHash() : mask(~std::uint64_t{0}) {}
    explicit CellHash(std::uint64_t m) : mask(m) {}
    std::size_t operator()(const CellCoord& c) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<CellCoord, Cell, CellHash> cells;
  };

  std::int64_t quantize(double v) const;
  CellCoord cellOf(const linalg::Vec3& p) const;
  std::uint64_t cellHash(const CellCoord& c) const;
  Shard& shardFor(const CellCoord& c) const;
  /// Probe one cell under its shard lock, tightening (best_d2, found).
  void probeCell(const CellCoord& coord, const linalg::Vec3& target,
                 double& best_d2, linalg::VecX& seed, bool& found) const;

  std::uint64_t hash_mask_ = ~std::uint64_t{0};

  SeedCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace dadu::service
