// Request/response types of the IK serving layer.
//
// A Request is what a caller hands to IkService::submit; a Response is
// what the returned future resolves to.  The Response wraps
// ik::SolveResult with a typed outcome so callers can distinguish
// Solved / Rejected / DeadlineExceeded without sentinel values (an
// unconverged SolveResult is still *Solved* at the service level — the
// solver ran and reported; Rejected means the solver never ran).
#pragma once

#include <cstdint>
#include <string>

#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"
#include "dadu/solvers/types.hpp"

namespace dadu::service {

/// Request priority class: under overload the circuit breaker sheds
/// kLow work first (before tripping), so latency-tolerant background
/// traffic is the first ballast overboard.
enum class Priority : std::uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

std::string toString(Priority p);

/// One IK request.  `seed` may be left empty to start from the chain's
/// zero configuration (or a seed-cache hit, when enabled).
struct Request {
  linalg::Vec3 target;
  linalg::VecX seed;
  /// Per-request deadline relative to submission (0 = none).  A request
  /// still queued when its deadline passes is dropped before solving
  /// and reported as kDeadlineExceeded; an in-flight solve is never
  /// interrupted.
  double deadline_ms = 0.0;
  /// Allow warm-starting from (and inserting into) the service's seed
  /// cache.  Off = solve exactly from `seed`, touch nothing shared.
  bool use_seed_cache = true;
  /// Shed class under overload (see Priority).
  Priority priority = Priority::kNormal;
};

/// Service-level outcome of a request.
enum class ResponseStatus {
  kSolved,            ///< solver ran; see Response::result for the IK outcome
  kRejected,          ///< never queued or never solved; see reject_reason
  kDeadlineExceeded,  ///< deadline passed while the request was queued
};

/// Why a request was rejected (meaningful iff status == kRejected).
enum class RejectReason {
  kNone,       ///< not rejected
  kQueueFull,  ///< admission control: the bounded queue was at capacity
  kShutdown,   ///< service stopped before (or instead of) solving it
  /// The solver threw (seed-size mismatch, non-finite target, ...).
  /// Only surfaced through the completion-callback submit path — the
  /// future path rethrows the original exception instead.  See
  /// Response::message for the exception text.
  kInternalError,
  /// Overload brownout: the circuit breaker is Open (fast-reject) or
  /// this request's priority class was shed while the queue is deep.
  /// Retryable — back off and try again.
  kOverloaded,
};

std::string toString(ResponseStatus s);
std::string toString(RejectReason r);

/// What a submitted request's future resolves to.
struct Response {
  ResponseStatus status = ResponseStatus::kRejected;
  RejectReason reject_reason = RejectReason::kNone;
  ik::SolveResult result;  ///< meaningful iff status == kSolved
  double queue_ms = 0.0;   ///< time spent in the queue before pickup
  double solve_ms = 0.0;   ///< solver wall time (0 unless kSolved)
  bool seeded_from_cache = false;  ///< solve started from a cache hit
  /// Human-readable detail for Rejected{kInternalError} (the solver
  /// exception's what()); empty otherwise.
  std::string message;

  /// Solved *and* converged — the service-level success predicate.
  bool ok() const {
    return status == ResponseStatus::kSolved && result.converged();
  }
};

}  // namespace dadu::service
