// Bounded MPMC request queue with backpressure.
//
// The admission-control point of the serving layer: producers tryPush
// and are *never* blocked — a full queue rejects immediately so the
// caller can shed load (the alternative, blocking producers, turns an
// overload into unbounded latency for everyone).  Consumers block in
// pop() until work arrives or the queue is closed and drained.
//
// Implementation is a mutex + condition variable around a deque: the
// queue hand-off is microseconds against solves that are hundreds of
// microseconds to milliseconds, so lock-free buys nothing here and a
// mutex keeps the semantics (close/drain interplay) easy to verify —
// and trivially ThreadSanitizer-clean.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "dadu/platform/clock.hpp"
#include "dadu/service/request.hpp"

namespace dadu::service {

/// How a finished job reports back: exactly one invocation per job,
/// from whichever thread finished it (a worker for solved/deadline
/// outcomes, the submitter for admission rejects, the stop() caller
/// for discard drains).  `error` is non-null iff the solver threw — the
/// future submit path rethrows it, the callback path folds it into a
/// Rejected{kInternalError} response.
using JobCompletion = std::function<void(Response&&, std::exception_ptr)>;

/// One queued unit of work: the request, the completion that resolves
/// it, and the submission-time bookkeeping the worker needs.
struct Job {
  Request request;
  JobCompletion finish;
  std::chrono::steady_clock::time_point enqueued{};
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  /// Admitted as a half-open circuit-breaker probe: its fate must be
  /// reported back to the breaker exactly once (success, failure, or
  /// "never executed" = failure).
  bool probe = false;
};

/// Outcome of a push attempt.
enum class PushResult {
  kAccepted,  ///< job is queued
  kFull,      ///< at capacity; job untouched, caller keeps the promise
  kClosed,    ///< queue closed; job untouched
};

class BoundedQueue {
 public:
  /// `capacity` = maximum queued (not yet popped) jobs; at least 1.
  /// `clock` parameterizes the popMany linger deadline (null = real
  /// steady clock).  The blocking waits are only ever exercised with a
  /// real clock: under the deterministic simulation harness consumers
  /// use the non-blocking tryPop/tryPopMany and the linger is modeled
  /// as an executor timer instead of a parked condition variable.
  explicit BoundedQueue(std::size_t capacity,
                        const platform::Clock* clock = nullptr);

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: moves from `job` only on kAccepted.
  PushResult tryPush(Job&& job);

  /// Block until a job is available (true) or the queue is closed and
  /// empty (false).  Closed-but-nonempty queues keep serving pops so a
  /// shutdown can drain.
  bool pop(Job& out);

  /// Bulk pop: block exactly like pop() until at least one job is
  /// available (or the queue is closed and drained — returns 0), then
  /// move up to `max_items` jobs into `out` in FIFO order.  The whole
  /// burst happens under ONE lock acquisition instead of one per item.
  /// If fewer than `max_items` are on hand and `max_wait` is positive,
  /// lingers up to that long for stragglers (the Nagle-style
  /// coalescing window), taking arrivals as they land and returning
  /// early once full or closed.  A woken consumer always consumes, so
  /// popMany never strands a producer's notify while work is queued.
  /// `out` is cleared first; the return value is out.size().
  std::size_t popMany(std::vector<Job>& out, std::size_t max_items,
                      std::chrono::microseconds max_wait);

  /// Non-blocking pop: false when the queue is momentarily empty (or
  /// closed and drained) — never waits.  The cooperative-executor
  /// consumers' spelling of pop().
  bool tryPop(Job& out);

  /// Non-blocking bulk pop: move up to `max_items` immediately
  /// available jobs into `out` (cleared first), FIFO, one lock for the
  /// burst.  Returns out.size(); 0 when nothing is queued.  Never
  /// waits — the cooperative-executor spelling of popMany(), with the
  /// linger window modeled by the caller's scheduler.
  std::size_t tryPopMany(std::vector<Job>& out, std::size_t max_items);

  /// Stop accepting pushes and wake every blocked consumer.  Queued
  /// jobs remain poppable.  Idempotent.
  void close();

  /// Remove and return every queued job (used by discard-mode shutdown
  /// to fail pending promises).  Usually preceded by close().
  std::vector<Job> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  const platform::Clock* clock_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

}  // namespace dadu::service
