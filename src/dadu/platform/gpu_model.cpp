#include "dadu/platform/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"

namespace dadu::platform {

GpuEstimate estimateGpuQuickIk(const GpuModelConfig& cfg, std::size_t dof,
                               double iterations, int speculations) {
  GpuEstimate est;
  if (iterations <= 0.0) return est;

  // Serial head on the CPU: Jacobian + J^T e + Eq. 8.
  const double head_flops =
      static_cast<double>(kin::jacobianFlops(dof)) + 8.0 * static_cast<double>(dof);
  const double head_us = head_flops / (cfg.cpu_serial_gflops * 1e3);

  // Speculative kernel: warps of speculations run concurrently up to
  // the residency limit, each thread walking the dependent FK chain.
  const int warps =
      (speculations + cfg.warp_size - 1) / std::max(cfg.warp_size, 1);
  const int serial_batches =
      (warps + cfg.max_concurrent_warps - 1) /
      std::max(cfg.max_concurrent_warps, 1);
  const double fk_flops = static_cast<double>(kin::fkFlops(dof));
  const double kernel_us =
      static_cast<double>(serial_batches) * fk_flops /
      (cfg.per_thread_gflops * 1e3);

  const double per_iter_us = cfg.iteration_overhead_us + head_us + kernel_us;
  est.time_ms = iterations * per_iter_us * 1e-3;
  est.energy_j = cfg.average_power_w * est.time_ms * 1e-3;
  est.overhead_fraction = cfg.iteration_overhead_us / per_iter_us;
  return est;
}

}  // namespace dadu::platform
