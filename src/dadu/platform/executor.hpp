// Execution seam: where deferred work runs.
//
// Production components run their work on OS threads they own (the
// IkService worker pool, the net reactor thread).  Handing them an
// Executor instead lets the deterministic simulation harness
// (src/dadu/sim/) run the same components as cooperatively-scheduled
// tasks on one thread under a virtual clock: `post` enqueues a task
// for "now", `postAt` schedules one for a virtual instant, and the
// sim's event loop decides the interleaving from a seed.
//
// Contract: tasks posted from a single thread run in a deterministic
// order decided by the executor (SimExecutor: due time, then a seeded
// tie-break, then FIFO).  An executor never runs tasks concurrently
// unless its concrete type documents otherwise — components written
// for the sim assume cooperative single-threaded execution and take
// no locks.
#pragma once

#include <functional>

#include "dadu/platform/clock.hpp"

namespace dadu::platform {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueue `task` to run as soon as the executor gets to it.
  virtual void post(std::function<void()> task) = 0;

  /// Enqueue `task` to run once the executor's clock reaches `due`.
  virtual void postAt(Clock::time_point due, std::function<void()> task) = 0;

  /// The clock this executor schedules against.
  virtual const Clock& clock() const = 0;
};

}  // namespace dadu::platform
