// Analytic timing/energy model of Quick-IK on a Jetson TX1-class
// embedded GPU (the paper's JT-TX1 configuration).
//
// We do not have CUDA hardware, so the GPU column is modelled rather
// than measured (see DESIGN.md, substitution table).  The model
// follows the paper's own analysis of where the GPU implementation's
// time goes (Section 6.3.1):
//
//   * "GPU needs to exchange data with CPU at each iteration" — the
//     serial head (Jacobian, alpha_base) runs on the A57, speculation
//     on the GPU, so each iteration pays a fixed kernel-launch +
//     host<->device copy overhead.  This dominates and is why the GPU
//     is only ~3x faster than the SVD baseline despite 64-way
//     parallelism.
//   * The speculative kernel runs all speculations concurrently, but
//     each thread serially chains N 4x4 multiplies (FK is a strict
//     dependency chain), so kernel time scales with N at per-thread
//     scalar throughput.
//   * The serial head runs on the CPU at scalar throughput.
//
// Constants are calibrated against public TX1 characteristics and the
// paper's Table 2/3 (see EXPERIMENTS.md for the resulting fit).
#pragma once

#include <cstddef>

namespace dadu::platform {

struct GpuModelConfig {
  /// Kernel launch + cudaMemcpy of theta/dtheta down and errors back,
  /// per iteration.  Embedded-Tegra launch+sync latencies are tens of
  /// microseconds; two copies and a sync land at ~100 us.
  double iteration_overhead_us = 100.0;
  /// Per-thread scalar throughput of one CUDA core chasing a dependent
  /// FK chain (no ILP): ~1 GFLOP/s effective at ~1 GHz.
  double per_thread_gflops = 1.0;
  /// A57 serial scalar throughput for the Jacobian/alpha head.
  double cpu_serial_gflops = 2.0;
  /// Threads per warp — speculation counts are rounded up to warps.
  int warp_size = 32;
  /// Concurrent warps the small kernel can keep resident; speculation
  /// waves beyond this serialise.
  int max_concurrent_warps = 16;
  /// Board-level average power under this load (paper Table 3).
  double average_power_w = 4.8;
};

struct GpuEstimate {
  double time_ms = 0.0;
  double energy_j = 0.0;
  double overhead_fraction = 0.0;  ///< share of time in launch/copy overhead
};

/// Estimate a full Quick-IK solve of `iterations` iterations with
/// `speculations` speculative searches per iteration on a `dof`-joint
/// chain.
GpuEstimate estimateGpuQuickIk(const GpuModelConfig& cfg, std::size_t dof,
                               double iterations, int speculations);

}  // namespace dadu::platform
