// Wall-clock timer for the measured-CPU rows of Table 2.
#pragma once

#include <chrono>

namespace dadu::platform {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dadu::platform
