// WallTimer moved to platform/clock.hpp, unified with the Clock seam
// (one time abstraction in the tree).  This header remains for the
// measured-CPU rows of Table 2 and other long-standing includers.
#pragma once

#include "dadu/platform/clock.hpp"  // IWYU pragma: export
