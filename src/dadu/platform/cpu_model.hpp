// Analytic timing/energy model of an Intel Atom D2500-class embedded
// CPU (the paper's measurement platform) plus helpers for converting
// measured host times to Atom-scale estimates.
//
// The reproduction machine is a modern x86 core, far faster than a
// 2011 Atom; Table 2's absolute milliseconds are therefore reproduced
// two ways: (1) measured host wall time (same code path, smaller
// constant) and (2) this model, which prices the per-iteration FLOP
// counts at Atom-class scalar throughput.  Shapes (growth with DOF,
// method ordering) are identical under both.
#pragma once

#include <cstddef>

namespace dadu::platform {

struct CpuModelConfig {
  /// Sustained scalar FP throughput of an in-order 1.86 GHz Bonnell
  /// core on chained dependent FP ops: each operation in the FK/J
  /// dependency chain waits out a ~5-cycle latency and real code adds
  /// load/store traffic, so ~0.1 FLOP/cycle effective.
  double sustained_gflops = 0.2;
  /// Package power under load (paper Table 3: ~10 W).
  double average_power_w = 10.0;
};

struct CpuEstimate {
  double time_ms = 0.0;
  double energy_j = 0.0;
};

/// JT-Serial: `iterations` x (Jacobian head + theta update).
CpuEstimate estimateCpuJtSerial(const CpuModelConfig& cfg, std::size_t dof,
                                double iterations);

/// Quick-IK executed serially on the CPU: `iterations` x (head +
/// `speculations` FK passes).
CpuEstimate estimateCpuQuickIk(const CpuModelConfig& cfg, std::size_t dof,
                               double iterations, int speculations);

/// Pseudoinverse baseline: `iterations` x (head + SVD sweeps + J^+ e).
CpuEstimate estimateCpuPinvSvd(const CpuModelConfig& cfg, std::size_t dof,
                               double iterations, double svd_sweeps_per_iter);

}  // namespace dadu::platform
