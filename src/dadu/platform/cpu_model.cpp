#include "dadu/platform/cpu_model.hpp"

#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/linalg/svd.hpp"

namespace dadu::platform {
namespace {

double headFlops(std::size_t dof) {
  return static_cast<double>(kin::jacobianFlops(dof)) +
         8.0 * static_cast<double>(dof);
}

CpuEstimate fromFlops(const CpuModelConfig& cfg, double flops) {
  CpuEstimate est;
  est.time_ms = flops / (cfg.sustained_gflops * 1e6);
  est.energy_j = cfg.average_power_w * est.time_ms * 1e-3;
  return est;
}

}  // namespace

CpuEstimate estimateCpuJtSerial(const CpuModelConfig& cfg, std::size_t dof,
                                double iterations) {
  const double per_iter = headFlops(dof) + 2.0 * static_cast<double>(dof);
  return fromFlops(cfg, iterations * per_iter);
}

CpuEstimate estimateCpuQuickIk(const CpuModelConfig& cfg, std::size_t dof,
                               double iterations, int speculations) {
  const double per_iter =
      headFlops(dof) +
      static_cast<double>(speculations) *
          (static_cast<double>(kin::fkFlops(dof)) + 2.0 * static_cast<double>(dof));
  return fromFlops(cfg, iterations * per_iter);
}

CpuEstimate estimateCpuPinvSvd(const CpuModelConfig& cfg, std::size_t dof,
                               double iterations, double svd_sweeps_per_iter) {
  const double svd_flops =
      svd_sweeps_per_iter * static_cast<double>(linalg::svdFlopsPerSweep(3, dof));
  // J^+ e application: ~12 * dof.
  const double per_iter = headFlops(dof) + svd_flops + 12.0 * static_cast<double>(dof);
  return fromFlops(cfg, iterations * per_iter);
}

}  // namespace dadu::platform
