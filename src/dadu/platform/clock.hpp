// The one time abstraction in the tree.
//
// Every component that reads time — the serving layer's queue-wait and
// solve stamps, the circuit breaker's trip windows, the net layer's
// idle sweep and drain deadline, the solver watchdog — takes a
// `const Clock*` (null = the real steady clock) instead of calling
// std::chrono::steady_clock::now() directly.  Production passes
// nothing and pays one predictable branch on paths that already pay a
// syscall; the deterministic simulation harness (src/dadu/sim/)
// passes a SimClock so the whole stack runs under virtual time and a
// million-request scheduling experiment costs milliseconds.
//
// The time_point type is steady_clock's everywhere: a virtual clock
// manufactures time_points on the same representation, so threading
// the seam changes no struct layouts and no public signatures beyond
// the optional clock itself.
#pragma once

#include <chrono>
#include <thread>

namespace dadu::platform {

class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;
  virtual time_point now() const = 0;

  /// Put the calling context to sleep for `d`.  The real clock blocks
  /// the OS thread; a virtual clock advances itself instead — under
  /// cooperative single-threaded execution the "sleeping" task is the
  /// only runnable one, so jumping time forward IS the sleep.  Used by
  /// fault-injected delays and the sim's modeled solve costs, so both
  /// charge simulated time instead of stalling the test process.
  virtual void sleepFor(duration d) const = 0;
};

/// Production clock: a thin virtual shim over steady_clock.
class RealClock final : public Clock {
 public:
  time_point now() const override { return std::chrono::steady_clock::now(); }
  void sleepFor(duration d) const override {
    if (d > duration::zero()) std::this_thread::sleep_for(d);
  }
};

/// The shared production instance (stateless, safe from any thread).
inline const Clock& realClock() {
  static const RealClock clock;
  return clock;
}

/// One clock read through the seam: the spelling every call site uses.
inline Clock::time_point clockNow(const Clock* clock) {
  return clock ? clock->now() : std::chrono::steady_clock::now();
}

/// Sleep `ms` on the seam (null clock = real thread sleep).
inline void sleepOn(const Clock* clock, double ms) {
  if (ms <= 0.0) return;
  const auto d = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
  if (clock)
    clock->sleepFor(d);
  else
    std::this_thread::sleep_for(d);
}

/// Elapsed-time stopwatch over the seam (formerly platform/timer.hpp's
/// wall-clock-only WallTimer).  Null clock = real steady clock with no
/// virtual call on either read.
class WallTimer {
 public:
  explicit WallTimer(const Clock* clock = nullptr)
      : clock_(clock), start_(clockNow(clock_)) {}
  void reset() { start_ = clockNow(clock_); }
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(clockNow(clock_) -
                                                     start_)
        .count();
  }

 private:
  const Clock* clock_;
  Clock::time_point start_;
};

}  // namespace dadu::platform
