// Joint-space RRT-Connect motion planning.
//
// The layer above IK in a real robot stack (and the subject of the
// Dadu group's follow-up accelerator work): IK gives the goal
// configuration, the planner finds a collision-free joint path to it.
// Implemented here as the classic bidirectional RRT-Connect over the
// capsule collision model, with shortcut smoothing — both a realistic
// consumer of fast IK (planners issue thousands of collision/IK
// queries) and the substrate for the planning example.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dadu/geometry/robot_geometry.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::plan {

struct RrtOptions {
  int max_iterations = 4000;       ///< tree-growth iterations
  double step_size = 0.25;         ///< joint-space extension step (rad)
  double goal_bias = 0.1;          ///< fraction of samples pulled to the goal
  double collision_resolution = 0.1;  ///< edge-checking step (rad)
  double margin = 0.0;             ///< required clearance
  bool check_self = false;         ///< include self-collision in checks
  int smoothing_passes = 60;       ///< shortcut attempts on the raw path
  std::uint64_t seed = 1;
};

struct RrtResult {
  bool success = false;
  std::vector<linalg::VecX> path;  ///< start..goal, collision-free waypoints
  int iterations = 0;              ///< growth iterations consumed
  double path_length = 0.0;        ///< joint-space length of the path

  bool empty() const { return path.empty(); }
};

class RrtPlanner {
 public:
  RrtPlanner(geom::RobotGeometry geometry, geom::Obstacles obstacles,
             RrtOptions options = {});

  /// Plan from `start` to `goal` (both must be collision-free; returns
  /// failure otherwise).  Deterministic per options.seed.
  RrtResult plan(const linalg::VecX& start, const linalg::VecX& goal);

  /// True iff every interpolated configuration between a and b is
  /// collision-free at the configured resolution.
  bool edgeFree(const linalg::VecX& a, const linalg::VecX& b) const;

  bool stateFree(const linalg::VecX& q) const;

 private:
  geom::RobotGeometry geometry_;
  geom::Obstacles obstacles_;
  RrtOptions options_;
};

/// Joint-space length of a waypoint path.
double pathLength(const std::vector<linalg::VecX>& path);

}  // namespace dadu::plan
