#include "dadu/planning/rrt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "dadu/workload/rng.hpp"

namespace dadu::plan {
namespace {

struct Node {
  linalg::VecX q;
  int parent = -1;
};

/// Nearest node by joint-space distance (linear scan: tree sizes here
/// are thousands, far below the break-even of a k-d tree over VecX).
std::size_t nearest(const std::vector<Node>& tree, const linalg::VecX& q) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double d = (tree[i].q - q).squaredNorm();
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

linalg::VecX stepToward(const linalg::VecX& from, const linalg::VecX& to,
                        double step) {
  const linalg::VecX d = to - from;
  const double n = d.norm();
  if (n <= step) return to;
  return from + d * (step / n);
}

std::vector<linalg::VecX> extractPath(const std::vector<Node>& tree,
                                      int leaf) {
  std::vector<linalg::VecX> path;
  for (int i = leaf; i != -1; i = tree[static_cast<std::size_t>(i)].parent)
    path.push_back(tree[static_cast<std::size_t>(i)].q);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

double pathLength(const std::vector<linalg::VecX>& path) {
  double len = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i)
    len += (path[i] - path[i - 1]).norm();
  return len;
}

RrtPlanner::RrtPlanner(geom::RobotGeometry geometry, geom::Obstacles obstacles,
                       RrtOptions options)
    : geometry_(std::move(geometry)),
      obstacles_(std::move(obstacles)),
      options_(options) {}

bool RrtPlanner::stateFree(const linalg::VecX& q) const {
  if (!obstacles_.empty() &&
      geometry_.environmentClearance(q, obstacles_) < options_.margin)
    return false;
  if (options_.check_self &&
      geometry_.selfClearance(q) < options_.margin)
    return false;
  return true;
}

bool RrtPlanner::edgeFree(const linalg::VecX& a, const linalg::VecX& b) const {
  const double dist = (b - a).norm();
  const int steps = std::max(
      1, static_cast<int>(std::ceil(dist / options_.collision_resolution)));
  for (int s = 1; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    if (!stateFree(a + (b - a) * t)) return false;
  }
  return true;
}

RrtResult RrtPlanner::plan(const linalg::VecX& start,
                           const linalg::VecX& goal) {
  RrtResult result;
  geometry_.chain().requireSize(start);
  geometry_.chain().requireSize(goal);
  if (!stateFree(start) || !stateFree(goal)) return result;

  // Trivial case first.
  if (edgeFree(start, goal)) {
    result.success = true;
    result.path = {start, goal};
    result.path_length = pathLength(result.path);
    return result;
  }

  workload::Rng rng(options_.seed);
  const kin::Chain& chain = geometry_.chain();
  const auto sample = [&] {
    linalg::VecX q(chain.dof());
    for (std::size_t i = 0; i < q.size(); ++i) {
      const kin::Joint& j = chain.joint(i);
      const double lo = std::isfinite(j.min) ? j.min : -std::numbers::pi;
      const double hi = std::isfinite(j.max) ? j.max : std::numbers::pi;
      q[i] = rng.uniform(lo, hi);
    }
    return q;
  };

  // Bidirectional trees; `a` grows towards the sample, `b` tries to
  // connect to a's new node; swap each round (RRT-Connect).
  std::vector<Node> tree_a = {{start, -1}};
  std::vector<Node> tree_b = {{goal, -1}};
  bool a_is_start = true;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const linalg::VecX target = rng.uniform() < options_.goal_bias
                                    ? tree_b[0].q
                                    : sample();

    // Extend tree_a one step towards the sample.
    const std::size_t na = nearest(tree_a, target);
    const linalg::VecX qa =
        stepToward(tree_a[na].q, target, options_.step_size);
    if (!edgeFree(tree_a[na].q, qa)) {
      std::swap(tree_a, tree_b);
      a_is_start = !a_is_start;
      continue;
    }
    tree_a.push_back({qa, static_cast<int>(na)});

    // Greedily connect tree_b towards the new node.
    std::size_t nb = nearest(tree_b, qa);
    linalg::VecX qb = tree_b[nb].q;
    while (true) {
      const linalg::VecX next = stepToward(qb, qa, options_.step_size);
      if (!edgeFree(qb, next)) break;
      tree_b.push_back({next, static_cast<int>(nb)});
      nb = tree_b.size() - 1;
      qb = next;
      if ((qb - qa).norm() < 1e-12) {
        // Trees met: assemble start->meet + meet->goal.
        auto path_a = extractPath(tree_a, static_cast<int>(tree_a.size()) - 1);
        auto path_b = extractPath(tree_b, static_cast<int>(nb));
        if (!a_is_start) std::swap(path_a, path_b);
        // path_a runs start->meet; path_b runs goal->meet: reverse it.
        std::reverse(path_b.begin(), path_b.end());
        // Drop the duplicated meeting configuration.
        if (!path_b.empty()) path_b.erase(path_b.begin());
        path_a.insert(path_a.end(), path_b.begin(), path_b.end());
        result.path = std::move(path_a);
        result.success = true;

        // Shortcut smoothing: try to splice random segment pairs.
        for (int pass = 0;
             pass < options_.smoothing_passes && result.path.size() > 2;
             ++pass) {
          const std::size_t i =
              rng.below(result.path.size() - 1);
          const std::size_t j =
              i + 1 + rng.below(result.path.size() - i - 1);
          if (j <= i + 1) continue;
          if (edgeFree(result.path[i], result.path[j])) {
            result.path.erase(result.path.begin() + static_cast<long>(i) + 1,
                              result.path.begin() + static_cast<long>(j));
          }
        }
        result.path_length = pathLength(result.path);
        return result;
      }
    }

    std::swap(tree_a, tree_b);
    a_is_start = !a_is_start;
  }
  return result;  // budget exhausted
}

}  // namespace dadu::plan
