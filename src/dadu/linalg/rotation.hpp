// Rotation constructors and checks shared by the kinematics layer and
// the test suite.
#pragma once

#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::linalg {

/// Rotation of `angle` radians about arbitrary unit `axis`
/// (Rodrigues' formula).  `axis` is normalised internally; a zero axis
/// yields the identity.
Mat3 axisAngle(const Vec3& axis, double angle);

/// Z-Y-X (yaw-pitch-roll) Euler angles to rotation matrix.
Mat3 rpy(double roll, double pitch, double yaw);

/// ||R R^T - I||_F — zero for an exact rotation; tests bound the drift
/// accumulated over long kinematic chains with this.
double orthonormalityError(const Mat3& r);

/// True iff R is orthonormal with determinant +1 within `tol`.
bool isRotation(const Mat3& r, double tol = 1e-9);

/// Angle of the rotation taking `a` to `b`, i.e. the geodesic distance
/// on SO(3); used by orientation-aware IK extensions and tests.
double rotationAngleBetween(const Mat3& a, const Mat3& b);

}  // namespace dadu::linalg
