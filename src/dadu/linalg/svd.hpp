// Singular value decomposition via one-sided Jacobi.
//
// The paper's pseudoinverse baseline (J^-1-SVD, the KDL/ROS solver)
// computes the Moore-Penrose inverse of the Jacobian through an SVD at
// every iteration; the paper's whole argument is that this per-
// iteration SVD is expensive and hard to parallelise, which the
// transpose method avoids.  We therefore need a real SVD, not a stub:
// one-sided Jacobi is compact, numerically robust for the small
// (3 x N) matrices IK produces, and — matching the paper's
// characterisation — inherently iterative and serial across sweeps.
#pragma once

#include <cstddef>

#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::linalg {

/// Thin SVD: A (m x n) = U (m x r) * diag(s) (r x r) * V^T (r x n)
/// with r = min(m, n) and s sorted descending (non-negative).
struct Svd {
  MatX u;           // m x r, orthonormal columns
  VecX s;           // r singular values, descending
  MatX v;           // n x r, orthonormal columns
  int sweeps = 0;   // Jacobi sweeps until convergence (diagnostic; the
                    // serial cost the paper attributes to SVD scales
                    // with this)

  /// Reassemble U diag(s) V^T; tests assert closeness to the input.
  MatX reconstruct() const;

  /// sigma_max / sigma_min over the numerically nonzero spectrum
  /// (infinity if rank-deficient).
  double conditionNumber(double tol = 0.0) const;

  /// Number of singular values above `tol` (default: relative machine
  /// tolerance max(m,n) * eps * sigma_max, the usual rank heuristic).
  std::size_t rank(double tol = 0.0) const;
};

/// Compute the thin SVD of `a`.  `max_sweeps` bounds the Jacobi
/// iteration; convergence is reached when every column pair is
/// orthogonal to within `tol` relative to the column norms.
Svd svdJacobi(const MatX& a, int max_sweeps = 60, double tol = 1e-14);

/// Count of floating-point multiply-adds a one-sided Jacobi SVD of an
/// m x n matrix spends per sweep — used by the platform timing models
/// to price the J^-1-SVD baseline on modelled hardware.
long long svdFlopsPerSweep(std::size_t m, std::size_t n);

}  // namespace dadu::linalg
