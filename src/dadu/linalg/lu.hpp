// Partial-pivot LU factorisation for general square systems.
//
// The IK solvers themselves only ever need SPD (Cholesky) or SVD
// factorisations, but LU completes the substrate: tests use it as an
// independent reference for solve/determinant results and examples use
// it for general linear systems arising in trajectory fitting.
#pragma once

#include <optional>
#include <vector>

#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::linalg {

/// PA = LU with row pivoting.  Construction fails on (numerically)
/// singular input.
class Lu {
 public:
  /// Factor a square matrix; nullopt if a zero pivot column is found.
  static std::optional<Lu> factor(const MatX& a, double pivot_tol = 1e-300);

  VecX solve(const VecX& b) const;
  MatX inverse() const;
  double determinant() const;

 private:
  Lu(MatX lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}
  MatX lu_;                        // packed L (unit diag, below) and U (on/above)
  std::vector<std::size_t> perm_;  // row permutation
  int sign_;                       // permutation parity for determinant
};

/// One-shot general solve; nullopt on singular A.
std::optional<VecX> luSolve(const MatX& a, const VecX& b);

}  // namespace dadu::linalg
