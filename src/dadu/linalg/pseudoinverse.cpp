#include "dadu/linalg/pseudoinverse.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace dadu::linalg {
namespace {

double defaultTol(const Svd& svd) {
  if (svd.s.size() == 0) return 0.0;
  const double dim =
      static_cast<double>(std::max(svd.u.rows(), svd.v.rows()));
  return dim * std::numeric_limits<double>::epsilon() * svd.s[0];
}

// Assemble V * diag(w) * U^T for per-singular-value weights w.
MatX assemble(const Svd& svd, const VecX& w) {
  const std::size_t n = svd.v.rows();
  const std::size_t m = svd.u.rows();
  const std::size_t r = svd.s.size();
  MatX pinv(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < r; ++k) acc += svd.v(i, k) * w[k] * svd.u(j, k);
      pinv(i, j) = acc;
    }
  return pinv;
}

VecX applyWeighted(const Svd& svd, const VecX& b, const VecX& w) {
  assert(b.size() == svd.u.rows());
  const std::size_t r = svd.s.size();
  // c = U^T b, scaled.
  VecX c(r);
  for (std::size_t k = 0; k < r; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < svd.u.rows(); ++i) acc += svd.u(i, k) * b[i];
    c[k] = acc * w[k];
  }
  // x = V c.
  VecX x(svd.v.rows());
  for (std::size_t i = 0; i < svd.v.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < r; ++k) acc += svd.v(i, k) * c[k];
    x[i] = acc;
  }
  return x;
}

VecX reciprocalWeights(const Svd& svd, double tol) {
  if (tol <= 0.0) tol = defaultTol(svd);
  VecX w(svd.s.size());
  for (std::size_t k = 0; k < svd.s.size(); ++k)
    w[k] = svd.s[k] > tol ? 1.0 / svd.s[k] : 0.0;
  return w;
}

VecX dampedWeights(const Svd& svd, double lambda) {
  VecX w(svd.s.size());
  for (std::size_t k = 0; k < svd.s.size(); ++k) {
    const double s = svd.s[k];
    w[k] = s / (s * s + lambda * lambda);
  }
  return w;
}

}  // namespace

MatX pseudoinverse(const MatX& a, double tol) {
  const Svd svd = svdJacobi(a);
  return assemble(svd, reciprocalWeights(svd, tol));
}

MatX dampedPseudoinverse(const MatX& a, double lambda) {
  const Svd svd = svdJacobi(a);
  return assemble(svd, dampedWeights(svd, lambda));
}

VecX pseudoinverseSolve(const Svd& svd, const VecX& b, double tol) {
  return applyWeighted(svd, b, reciprocalWeights(svd, tol));
}

VecX dampedSolve(const Svd& svd, const VecX& b, double lambda) {
  return applyWeighted(svd, b, dampedWeights(svd, lambda));
}

}  // namespace dadu::linalg
