// 4x4 homogeneous transformation matrix.
//
// This is the datatype the paper's accelerator is built around: forward
// kinematics is the chained product of per-joint transformation
// matrices, f(theta) = prod_i {i-1}T_i (Eq. 10), and IKAcc's Forward
// Kinematics Unit is a dedicated 4x4-multiply logic block.  The
// software multiply below (64 mul + 48 add) is exactly the operation
// the FKU cycle model in dadu/ikacc prices.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::linalg {

/// Row-major 4x4 matrix; rigid transforms keep the last row [0 0 0 1].
struct Mat4 {
  std::array<std::array<double, 4>, 4> m{};

  constexpr Mat4() = default;

  static constexpr Mat4 zero() { return {}; }
  static constexpr Mat4 identity() {
    Mat4 r;
    r.m[0][0] = r.m[1][1] = r.m[2][2] = r.m[3][3] = 1.0;
    return r;
  }

  /// Compose from a rotation block and a translation column.
  static constexpr Mat4 fromRotationTranslation(const Mat3& rot, const Vec3& p) {
    Mat4 r = identity();
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.m[i][j] = rot(i, j);
    r.m[0][3] = p.x;
    r.m[1][3] = p.y;
    r.m[2][3] = p.z;
    return r;
  }

  static constexpr Mat4 translation(const Vec3& p) {
    return fromRotationTranslation(Mat3::identity(), p);
  }

  static Mat4 rotationX(double a) {
    const double c = std::cos(a), s = std::sin(a);
    Mat4 r = identity();
    r.m[1][1] = c; r.m[1][2] = -s;
    r.m[2][1] = s; r.m[2][2] = c;
    return r;
  }
  static Mat4 rotationY(double a) {
    const double c = std::cos(a), s = std::sin(a);
    Mat4 r = identity();
    r.m[0][0] = c;  r.m[0][2] = s;
    r.m[2][0] = -s; r.m[2][2] = c;
    return r;
  }
  static Mat4 rotationZ(double a) {
    const double c = std::cos(a), s = std::sin(a);
    Mat4 r = identity();
    r.m[0][0] = c; r.m[0][1] = -s;
    r.m[1][0] = s; r.m[1][1] = c;
    return r;
  }

  constexpr double operator()(std::size_t r, std::size_t c) const { return m[r][c]; }
  double& operator()(std::size_t r, std::size_t c) { return m[r][c]; }

  constexpr bool operator==(const Mat4&) const = default;

  /// The paper's notation: T.M is the rotation block, T.P the position
  /// column (used when forming Jacobian columns J_i = T.M z x (T_N.P -
  /// T_i.P)).
  constexpr Mat3 rotation() const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r(i, j) = m[i][j];
    return r;
  }
  constexpr Vec3 position() const { return {m[0][3], m[1][3], m[2][3]}; }

  constexpr Mat4 operator*(const Mat4& o) const {
    Mat4 r;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < 4; ++k) s += m[i][k] * o.m[k][j];
        r.m[i][j] = s;
      }
    return r;
  }

  constexpr Vec4 operator*(const Vec4& v) const {
    Vec4 r;
    for (std::size_t i = 0; i < 4; ++i) {
      r[i] = m[i][0] * v.x + m[i][1] * v.y + m[i][2] * v.z + m[i][3] * v.w;
    }
    return r;
  }

  /// Apply to a point (w = 1).
  constexpr Vec3 transformPoint(const Vec3& p) const {
    return ((*this) * Vec4::point(p)).xyz();
  }
  /// Apply to a direction (w = 0; rotation only).
  constexpr Vec3 transformDirection(const Vec3& d) const {
    return ((*this) * Vec4::direction(d)).xyz();
  }

  constexpr Mat4 transposed() const {
    Mat4 r;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) r.m[i][j] = m[j][i];
    return r;
  }

  /// Closed-form inverse for rigid transforms: [R p]^-1 = [R^T -R^T p].
  /// Precondition: rotation block orthonormal, last row [0 0 0 1].
  constexpr Mat4 rigidInverse() const {
    const Mat3 rt = rotation().transposed();
    const Vec3 p = position();
    return fromRotationTranslation(rt, -(rt * p));
  }

  double frobeniusNorm() const {
    double s = 0.0;
    for (const auto& r : m)
      for (double v : r) s += v * v;
    return std::sqrt(s);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Mat4& a) {
  for (std::size_t i = 0; i < 4; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < 4; ++j) os << a(i, j) << (j < 3 ? ", " : "");
    os << (i == 3 ? "]" : "\n");
  }
  return os;
}

}  // namespace dadu::linalg
