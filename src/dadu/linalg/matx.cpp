#include "dadu/linalg/matx.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dadu::linalg {

MatX::MatX(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("MatX: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

MatX MatX::identity(std::size_t n) {
  MatX r(n, n);
  for (std::size_t i = 0; i < n; ++i) r(i, i) = 1.0;
  return r;
}

MatX MatX::operator+(const MatX& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  MatX r(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] = data_[i] + o.data_[i];
  return r;
}

MatX MatX::operator-(const MatX& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  MatX r(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] = data_[i] - o.data_[i];
  return r;
}

MatX MatX::operator*(double s) const {
  MatX r(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] = data_[i] * s;
  return r;
}

MatX MatX::operator*(const MatX& o) const {
  assert(cols_ == o.rows_);
  MatX r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* orow = o.rowPtr(k);
      double* rrow = r.rowPtr(i);
      for (std::size_t j = 0; j < o.cols_; ++j) rrow[j] += aik * orow[j];
    }
  }
  return r;
}

VecX MatX::operator*(const VecX& v) const {
  assert(cols_ == v.size());
  VecX r(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = rowPtr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += row[j] * v[j];
    r[i] = s;
  }
  return r;
}

MatX& MatX::operator+=(const MatX& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

MatX& MatX::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

MatX MatX::transposed() const {
  MatX r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
  return r;
}

VecX MatX::applyTransposed(const VecX& v) const {
  assert(rows_ == v.size());
  VecX r(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = rowPtr(i);
    const double vi = v[i];
    for (std::size_t j = 0; j < cols_; ++j) r[j] += row[j] * vi;
  }
  return r;
}

MatX MatX::gram() const {
  MatX r(rows_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i; j < rows_; ++j) {
      const double* a = rowPtr(i);
      const double* b = rowPtr(j);
      double s = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) s += a[k] * b[k];
      r(i, j) = s;
      r(j, i) = s;
    }
  }
  return r;
}

double MatX::frobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double MatX::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

void MatX::setZero() {
  for (double& v : data_) v = 0.0;
}

void MatX::setCol3(std::size_t c, const Vec3& v) {
  assert(rows_ == 3 && c < cols_);
  (*this)(0, c) = v.x;
  (*this)(1, c) = v.y;
  (*this)(2, c) = v.z;
}

Vec3 MatX::col3(std::size_t c) const {
  assert(rows_ == 3 && c < cols_);
  return {(*this)(0, c), (*this)(1, c), (*this)(2, c)};
}

Vec3 mul3(const MatX& j, const VecX& v) {
  assert(j.rows() == 3 && j.cols() == v.size());
  Vec3 r;
  for (std::size_t i = 0; i < 3; ++i) {
    const double* row = j.rowPtr(i);
    double s = 0.0;
    for (std::size_t k = 0; k < j.cols(); ++k) s += row[k] * v[k];
    r[i] = s;
  }
  return r;
}

void mulTransposed3(const MatX& j, const Vec3& e, VecX& out) {
  assert(j.rows() == 3);
  if (out.size() != j.cols()) out.resize(j.cols());
  const double* r0 = j.rowPtr(0);
  const double* r1 = j.rowPtr(1);
  const double* r2 = j.rowPtr(2);
  for (std::size_t k = 0; k < j.cols(); ++k)
    out[k] = r0[k] * e.x + r1[k] * e.y + r2[k] * e.z;
}

Mat3 gram3(const MatX& j) {
  assert(j.rows() == 3);
  Mat3 g;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t l = i; l < 3; ++l) {
      const double* a = j.rowPtr(i);
      const double* b = j.rowPtr(l);
      double s = 0.0;
      for (std::size_t k = 0; k < j.cols(); ++k) s += a[k] * b[k];
      g(i, l) = s;
      g(l, i) = s;
    }
  }
  return g;
}

std::ostream& operator<<(std::ostream& os, const MatX& a) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < a.cols(); ++j) {
      os << a(i, j);
      if (j + 1 < a.cols()) os << ", ";
    }
    os << (i + 1 == a.rows() ? "]" : "\n");
  }
  return os;
}

}  // namespace dadu::linalg
