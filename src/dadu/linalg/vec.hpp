// Fixed-size vector types used throughout Dadu.
//
// IK works almost entirely with 3-vectors (task-space positions, error
// vectors) and 4-vectors (homogeneous points), so these are concrete
// aggregate types rather than a generic template: they stay trivially
// copyable, fit in registers, and keep compile times and error messages
// small.  The dynamic-length counterpart lives in vecx.hpp.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace dadu::linalg {

/// 3-component column vector of doubles (task-space position / error).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  static constexpr Vec3 zero() { return {}; }
  static constexpr Vec3 unitX() { return {1.0, 0.0, 0.0}; }
  static constexpr Vec3 unitY() { return {0.0, 1.0, 0.0}; }
  static constexpr Vec3 unitZ() { return {0.0, 0.0, 1.0}; }

  constexpr double operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }
  double& operator[](std::size_t i) {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double squaredNorm() const { return dot(*this); }
  double norm() const { return std::sqrt(squaredNorm()); }

  /// Unit vector in the same direction; returns zero vector if the norm
  /// is below `eps` (callers in kinematics treat that as a degenerate
  /// axis and skip the joint contribution).
  Vec3 normalized(double eps = 1e-300) const {
    const double n = norm();
    return n > eps ? *this / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '[' << v.x << ", " << v.y << ", " << v.z << ']';
}

/// 4-component vector (homogeneous coordinates).
struct Vec4 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double w = 0.0;

  constexpr Vec4() = default;
  constexpr Vec4(double x_, double y_, double z_, double w_)
      : x(x_), y(y_), z(z_), w(w_) {}
  /// Promote a position to a homogeneous point (w = 1).
  static constexpr Vec4 point(const Vec3& p) { return {p.x, p.y, p.z, 1.0}; }
  /// Promote a direction to a homogeneous vector (w = 0).
  static constexpr Vec4 direction(const Vec3& d) { return {d.x, d.y, d.z, 0.0}; }

  constexpr double operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : (i == 2 ? z : w));
  }
  double& operator[](std::size_t i) {
    return i == 0 ? x : (i == 1 ? y : (i == 2 ? z : w));
  }

  constexpr Vec4 operator+(const Vec4& o) const { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
  constexpr Vec4 operator-(const Vec4& o) const { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
  constexpr Vec4 operator*(double s) const { return {x * s, y * s, z * s, w * s}; }

  constexpr bool operator==(const Vec4&) const = default;

  constexpr double dot(const Vec4& o) const {
    return x * o.x + y * o.y + z * o.z + w * o.w;
  }
  double norm() const { return std::sqrt(dot(*this)); }

  /// Drop the homogeneous coordinate (no perspective divide: rigid
  /// transforms keep w exactly 0 or 1).
  constexpr Vec3 xyz() const { return {x, y, z}; }
};

inline std::ostream& operator<<(std::ostream& os, const Vec4& v) {
  return os << '[' << v.x << ", " << v.y << ", " << v.z << ", " << v.w << ']';
}

}  // namespace dadu::linalg
