// Dynamic-length vector: joint-angle vectors theta of an N-DOF chain.
//
// The paper targets manipulators with up to 100 degrees of freedom, so
// joint vectors are heap-allocated with the length fixed per robot.
// The type is deliberately small: IK inner loops index raw storage, so
// operations here favour clarity, and the handful that sit on hot
// paths (axpy-style updates) are provided as named free functions that
// avoid temporaries.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <vector>

namespace dadu::linalg {

/// Dynamic column vector of doubles.
class VecX {
 public:
  VecX() = default;
  /// n zeros.
  explicit VecX(std::size_t n) : data_(n, 0.0) {}
  VecX(std::size_t n, double fill) : data_(n, fill) {}
  VecX(std::initializer_list<double> vals) : data_(vals) {}
  explicit VecX(std::vector<double> vals) : data_(std::move(vals)) {}

  static VecX zero(std::size_t n) { return VecX(n); }
  static VecX constant(std::size_t n, double v) { return VecX(n, v); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](std::size_t i) const { return data_[i]; }
  double& operator[](std::size_t i) { return data_[i]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  bool operator==(const VecX&) const = default;

  VecX operator+(const VecX& o) const;
  VecX operator-(const VecX& o) const;
  VecX operator*(double s) const;
  VecX operator/(double s) const;
  VecX operator-() const;
  VecX& operator+=(const VecX& o);
  VecX& operator-=(const VecX& o);
  VecX& operator*=(double s);

  double dot(const VecX& o) const;
  double squaredNorm() const { return dot(*this); }
  double norm() const;
  /// Largest |x_i|; 0 for the empty vector.
  double maxAbs() const;

  void setZero();
  void resize(std::size_t n) { data_.assign(n, 0.0); }

 private:
  std::vector<double> data_;
};

VecX operator*(double s, const VecX& v);

/// y := y + a*x  (no temporary; the theta_k = theta + alpha_k *
/// dtheta_base update in Quick-IK's speculation loop).
void axpy(double a, const VecX& x, VecX& y);

/// out := y + a*x with out pre-sized by caller (re-usable scratch in
/// speculation loops that must not allocate per speculation).
void axpyInto(double a, const VecX& x, const VecX& y, VecX& out);

std::ostream& operator<<(std::ostream& os, const VecX& v);

}  // namespace dadu::linalg
