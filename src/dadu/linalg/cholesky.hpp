// Cholesky (L L^T) factorisation for symmetric positive-definite
// systems.
//
// The damped-least-squares baseline solves (J J^T + lambda^2 I) y = e
// every iteration; with a 3-dimensional task space that system is 3x3,
// but the factorisation here is general so it also serves redundancy-
// resolution extensions working in N-dimensional joint space.
#pragma once

#include <optional>

#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix.  Construction fails (empty optional) if A is not SPD within
/// round-off (non-positive pivot encountered).
class Cholesky {
 public:
  static std::optional<Cholesky> factor(const MatX& a);

  /// Solve A x = b via forward/back substitution on the stored factor.
  VecX solve(const VecX& b) const;

  /// det(A) = prod(L_ii)^2.
  double determinant() const;

  const MatX& factorMatrix() const { return l_; }

 private:
  explicit Cholesky(MatX l) : l_(std::move(l)) {}
  MatX l_;
};

/// One-shot SPD solve; returns nullopt if A is not SPD.
std::optional<VecX> choleskySolve(const MatX& a, const VecX& b);

}  // namespace dadu::linalg
