// Dynamic dense matrix: the 3xN position Jacobian and the small
// factorisation workspaces of the pseudoinverse / damped-least-squares
// baselines.
//
// Row-major storage.  For the Jacobian-transpose update the library
// never materialises J^T: applyTransposed() computes J^T e directly,
// which is also what the accelerator's SPU pipeline does in hardware.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::linalg {

/// Dynamic row-major matrix of doubles.
class MatX {
 public:
  MatX() = default;
  MatX(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Build from nested initializer lists; all rows must be equal length.
  MatX(std::initializer_list<std::initializer_list<double>> rows);

  static MatX zero(std::size_t r, std::size_t c) { return {r, c}; }
  static MatX identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  /// Pointer to the start of row r (rows are contiguous).
  const double* rowPtr(std::size_t r) const { return data_.data() + r * cols_; }
  double* rowPtr(std::size_t r) { return data_.data() + r * cols_; }

  bool operator==(const MatX&) const = default;

  MatX operator+(const MatX& o) const;
  MatX operator-(const MatX& o) const;
  MatX operator*(double s) const;
  MatX operator*(const MatX& o) const;
  VecX operator*(const VecX& v) const;
  MatX& operator+=(const MatX& o);
  MatX& operator*=(double s);

  MatX transposed() const;

  /// out = A^T v without forming A^T.  For the 3xN Jacobian this is the
  /// dtheta_base = J^T (Xt - f(theta)) step (Algorithm 1, line 4).
  VecX applyTransposed(const VecX& v) const;

  /// A A^T as a dense matrix (rows x rows); small for IK (3x3).
  MatX gram() const;

  double frobeniusNorm() const;
  double maxAbs() const;

  void setZero();
  /// Copy a Vec3 into column c of a 3-row matrix.
  void setCol3(std::size_t c, const Vec3& v);
  Vec3 col3(std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Convenience for the 3-row Jacobian: J v for VecX v returning Vec3.
Vec3 mul3(const MatX& j, const VecX& v);

/// J^T e for 3-row J and Vec3 e, writing into a caller-provided vector
/// (hot path of every transpose-method iteration).
void mulTransposed3(const MatX& j, const Vec3& e, VecX& out);

/// JJ^T for a 3-row J as a Mat3 (Eq. 8 numerator/denominator operand).
Mat3 gram3(const MatX& j);

std::ostream& operator<<(std::ostream& os, const MatX& a);

}  // namespace dadu::linalg
