// 3x3 matrix: rotation blocks of SE(3) transforms and the JJ^T products
// of the Jacobian-transpose update (Eq. 8 of the paper works on the
// 3-dimensional task space, so JJ^T is always 3x3).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

#include "dadu/linalg/vec.hpp"

namespace dadu::linalg {

/// Row-major 3x3 matrix of doubles.
struct Mat3 {
  // m[r][c]
  std::array<std::array<double, 3>, 3> m{};

  constexpr Mat3() = default;

  static constexpr Mat3 zero() { return {}; }
  static constexpr Mat3 identity() {
    Mat3 r;
    r.m[0][0] = r.m[1][1] = r.m[2][2] = 1.0;
    return r;
  }
  /// Build from rows.
  static constexpr Mat3 fromRows(const Vec3& r0, const Vec3& r1, const Vec3& r2) {
    Mat3 r;
    r.m[0] = {r0.x, r0.y, r0.z};
    r.m[1] = {r1.x, r1.y, r1.z};
    r.m[2] = {r2.x, r2.y, r2.z};
    return r;
  }
  static constexpr Mat3 fromCols(const Vec3& c0, const Vec3& c1, const Vec3& c2) {
    Mat3 r;
    r.m[0] = {c0.x, c1.x, c2.x};
    r.m[1] = {c0.y, c1.y, c2.y};
    r.m[2] = {c0.z, c1.z, c2.z};
    return r;
  }
  /// Outer product a b^T; the building block of JJ^T = sum_i J_i J_i^T
  /// (Eq. 11) accumulated column by column.
  static constexpr Mat3 outer(const Vec3& a, const Vec3& b) {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.m[i][j] = a[i] * b[j];
    return r;
  }

  constexpr double operator()(std::size_t r, std::size_t c) const { return m[r][c]; }
  double& operator()(std::size_t r, std::size_t c) { return m[r][c]; }

  constexpr Vec3 row(std::size_t r) const { return {m[r][0], m[r][1], m[r][2]}; }
  constexpr Vec3 col(std::size_t c) const { return {m[0][c], m[1][c], m[2][c]}; }

  constexpr bool operator==(const Mat3&) const = default;

  constexpr Mat3 operator+(const Mat3& o) const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.m[i][j] = m[i][j] + o.m[i][j];
    return r;
  }
  constexpr Mat3 operator-(const Mat3& o) const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.m[i][j] = m[i][j] - o.m[i][j];
    return r;
  }
  constexpr Mat3 operator*(double s) const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.m[i][j] = m[i][j] * s;
    return r;
  }
  Mat3& operator+=(const Mat3& o) {
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) m[i][j] += o.m[i][j];
    return *this;
  }

  constexpr Vec3 operator*(const Vec3& v) const {
    return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
  }
  constexpr Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < 3; ++k) s += m[i][k] * o.m[k][j];
        r.m[i][j] = s;
      }
    return r;
  }

  constexpr Mat3 transposed() const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
    return r;
  }

  constexpr double trace() const { return m[0][0] + m[1][1] + m[2][2]; }

  constexpr double determinant() const {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  }

  /// Frobenius norm; used by tests asserting orthonormality drift.
  double frobeniusNorm() const {
    double s = 0.0;
    for (const auto& r : m)
      for (double v : r) s += v * v;
    return std::sqrt(s);
  }
};

constexpr Mat3 operator*(double s, const Mat3& a) { return a * s; }

inline std::ostream& operator<<(std::ostream& os, const Mat3& a) {
  for (std::size_t i = 0; i < 3; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < 3; ++j) os << a(i, j) << (j < 2 ? ", " : "");
    os << (i == 2 ? "]" : "\n");
  }
  return os;
}

}  // namespace dadu::linalg
