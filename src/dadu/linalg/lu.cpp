#include "dadu/linalg/lu.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace dadu::linalg {

std::optional<Lu> Lu::factor(const MatX& a, double pivot_tol) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  MatX lu = a;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Pick the largest pivot in column k.
    std::size_t piv = k;
    double best = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (!(best > pivot_tol)) return std::nullopt;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(piv, j));
      std::swap(perm[k], perm[piv]);
      sign = -sign;
    }
    const double inv = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = lu(i, k) * inv;
      lu(i, k) = f;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= f * lu(k, j);
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

VecX Lu::solve(const VecX& b) const {
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  VecX x(n);
  // Apply permutation, forward-substitute L (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * x[k];
    x[i] = s;
  }
  // Back-substitute U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

MatX Lu::inverse() const {
  const std::size_t n = lu_.rows();
  MatX inv(n, n);
  VecX e(n);
  for (std::size_t j = 0; j < n; ++j) {
    e.setZero();
    e[j] = 1.0;
    const VecX col = solve(e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

double Lu::determinant() const {
  double d = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

std::optional<VecX> luSolve(const MatX& a, const VecX& b) {
  auto f = Lu::factor(a);
  if (!f) return std::nullopt;
  return f->solve(b);
}

}  // namespace dadu::linalg
