// Structure-of-arrays batch of 3x4 affine transforms.
//
// Quick-IK's speculation sweep advances K end-effector transforms in
// lock-step down the chain — one per candidate step size.  Only the
// position column is ever consumed, so the last row of each 4x4
// ([0 0 0 1] for every rigid transform) need not be stored or
// computed: a 3x4 affine accumulator does the same job with ~25% fewer
// multiply-adds per joint (36+27 vs 64+48).
//
// Layout: 12 rows (the 3x4 entries in row-major order), each a
// contiguous array of K lanes — the batch index is innermost.  The
// per-joint update then reads and writes unit-stride lane vectors,
// which is the memory shape auto-vectorizers want and the software
// mirror of the paper's FKU array, where K speculative FK chains
// advance one joint per wave in parallel silicon lanes.
//
// For the explicit-SIMD speculation backends the storage is 64-byte
// aligned and the lane stride can be padded to a backend's preferred
// lane multiple (resize(lanes, lane_multiple)), so every row starts a
// whole cache line / vector register.  Padding lanes are never
// initialised or read — they exist purely so row starts align;
// kernels use unaligned loads and ragged tails, so correctness never
// depends on either.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "dadu/linalg/mat4.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::linalg {

namespace detail {

/// Minimal 64-byte-aligning allocator for the SoA lane storage.
template <typename T>
struct LaneAllocator {
  using value_type = T;
  static constexpr std::size_t kAlign = 64;

  LaneAllocator() = default;
  template <typename U>
  LaneAllocator(const LaneAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }
  template <typename U>
  bool operator==(const LaneAllocator<U>&) const {
    return true;
  }
};

}  // namespace detail

/// SoA batch of 3x4 affine transforms over scalar type T (double for
/// the reference datapath, float for the FP32-FKU model).
template <typename T>
class Mat34BatchT {
 public:
  Mat34BatchT() = default;

  std::size_t lanes() const { return lanes_; }
  /// Lane stride of each row: lanes() rounded up to the padding
  /// multiple resize() was given.  Lanes [lanes(), stride()) are
  /// uninitialised padding.
  std::size_t stride() const { return stride_; }

  /// Size to `lanes` transforms, padding each row's stride up to a
  /// multiple of `lane_multiple` (a speculation backend's preferred
  /// vector width) so row starts stay 64-byte aligned.  Entries are
  /// left uninitialised; call setLanes() before use.  No reallocation
  /// once `reserve`d at the padded size.
  void resize(std::size_t lanes, std::size_t lane_multiple = 1) {
    lanes_ = lanes;
    if (lane_multiple < 1) lane_multiple = 1;
    stride_ = ((lanes + lane_multiple - 1) / lane_multiple) * lane_multiple;
    data_.resize(12 * stride_);
  }
  void reserve(std::size_t lanes) { data_.reserve(12 * lanes); }

  /// Lane array of entry (r, c), r in [0,3), c in [0,4).
  T* row(std::size_t r, std::size_t c) {
    return data_.data() + (r * 4 + c) * stride_;
  }
  const T* row(std::size_t r, std::size_t c) const {
    return data_.data() + (r * 4 + c) * stride_;
  }

  /// Broadcast the affine part of `t` into lanes [lane_begin,
  /// lane_end) — how each worker seeds its lane chunk with the chain
  /// base before walking the joints.
  void setLanes(const Mat4& t, std::size_t lane_begin, std::size_t lane_end) {
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 4; ++c) {
        T* lane = row(r, c);
        const T v = static_cast<T>(t(r, c));
        for (std::size_t k = lane_begin; k < lane_end; ++k) lane[k] = v;
      }
  }

  /// Position column of lane k, widened to double.
  Vec3 position(std::size_t k) const {
    return {static_cast<double>(row(0, 3)[k]),
            static_cast<double>(row(1, 3)[k]),
            static_cast<double>(row(2, 3)[k])};
  }

  /// Full transform of lane k widened to a Mat4 (last row [0 0 0 1]);
  /// diagnostic / test accessor, not on the hot path.
  Mat4 lane(std::size_t k) const {
    Mat4 t = Mat4::identity();
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 4; ++c)
        t(r, c) = static_cast<double>(row(r, c)[k]);
    return t;
  }

 private:
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;
  std::vector<T, detail::LaneAllocator<T>> data_;
};

using Mat34Batch = Mat34BatchT<double>;
using Mat34BatchF = Mat34BatchT<float>;

}  // namespace dadu::linalg
