#include "dadu/linalg/quaternion.hpp"

#include <algorithm>
#include <cmath>

namespace dadu::linalg {

Quaternion Quaternion::fromAxisAngle(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  if (u.squaredNorm() == 0.0) return identity();
  const double half = angle / 2.0;
  const double s = std::sin(half);
  return {std::cos(half), u.x * s, u.y * s, u.z * s};
}

Quaternion Quaternion::fromMatrix(const Mat3& r) {
  // Shepperd: pick the largest of {w, x, y, z} as pivot for stability.
  const double t = r.trace();
  Quaternion q;
  if (t > 0.0) {
    const double s = std::sqrt(t + 1.0) * 2.0;
    q.w = 0.25 * s;
    q.x = (r(2, 1) - r(1, 2)) / s;
    q.y = (r(0, 2) - r(2, 0)) / s;
    q.z = (r(1, 0) - r(0, 1)) / s;
  } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
    q.w = (r(2, 1) - r(1, 2)) / s;
    q.x = 0.25 * s;
    q.y = (r(0, 1) + r(1, 0)) / s;
    q.z = (r(0, 2) + r(2, 0)) / s;
  } else if (r(1, 1) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
    q.w = (r(0, 2) - r(2, 0)) / s;
    q.x = (r(0, 1) + r(1, 0)) / s;
    q.y = 0.25 * s;
    q.z = (r(1, 2) + r(2, 1)) / s;
  } else {
    const double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
    q.w = (r(1, 0) - r(0, 1)) / s;
    q.x = (r(0, 2) + r(2, 0)) / s;
    q.y = (r(1, 2) + r(2, 1)) / s;
    q.z = 0.25 * s;
  }
  return q.normalized();
}

Mat3 Quaternion::toMatrix() const {
  const Quaternion q = normalized();
  Mat3 r;
  const double xx = q.x * q.x, yy = q.y * q.y, zz = q.z * q.z;
  const double xy = q.x * q.y, xz = q.x * q.z, yz = q.y * q.z;
  const double wx = q.w * q.x, wy = q.w * q.y, wz = q.w * q.z;
  r(0, 0) = 1.0 - 2.0 * (yy + zz);
  r(0, 1) = 2.0 * (xy - wz);
  r(0, 2) = 2.0 * (xz + wy);
  r(1, 0) = 2.0 * (xy + wz);
  r(1, 1) = 1.0 - 2.0 * (xx + zz);
  r(1, 2) = 2.0 * (yz - wx);
  r(2, 0) = 2.0 * (xz - wy);
  r(2, 1) = 2.0 * (yz + wx);
  r(2, 2) = 1.0 - 2.0 * (xx + yy);
  return r;
}

double Quaternion::norm() const {
  return std::sqrt(w * w + x * x + y * y + z * z);
}

Quaternion Quaternion::normalized() const {
  const double n = norm();
  if (n <= 0.0) return identity();
  return {w / n, x / n, y / n, z / n};
}

Quaternion Quaternion::operator*(const Quaternion& o) const {
  return {w * o.w - x * o.x - y * o.y - z * o.z,
          w * o.x + x * o.w + y * o.z - z * o.y,
          w * o.y - x * o.z + y * o.w + z * o.x,
          w * o.z + x * o.y - y * o.x + z * o.w};
}

Vec3 Quaternion::rotate(const Vec3& v) const {
  // q v q* expanded (Rodrigues-like form, avoids building the matrix).
  const Vec3 u{x, y, z};
  const Vec3 t = u.cross(v) * 2.0;
  return v + t * w + u.cross(t);
}

double Quaternion::angleTo(const Quaternion& o) const {
  const double dot =
      std::abs(w * o.w + x * o.x + y * o.y + z * o.z);  // double cover
  return 2.0 * std::acos(std::clamp(dot, -1.0, 1.0));
}

Quaternion slerp(const Quaternion& a_in, const Quaternion& b_in, double t) {
  Quaternion a = a_in.normalized();
  Quaternion b = b_in.normalized();
  double dot = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
  // Shortest arc: flip one end if needed.
  if (dot < 0.0) {
    b = {-b.w, -b.x, -b.y, -b.z};
    dot = -dot;
  }
  dot = std::min(dot, 1.0);
  const double theta = std::acos(dot);
  if (theta < 1e-9) {
    // Nearly parallel: nlerp is exact to first order.
    Quaternion q{a.w + t * (b.w - a.w), a.x + t * (b.x - a.x),
                 a.y + t * (b.y - a.y), a.z + t * (b.z - a.z)};
    return q.normalized();
  }
  const double s = std::sin(theta);
  const double wa = std::sin((1.0 - t) * theta) / s;
  const double wb = std::sin(t * theta) / s;
  return Quaternion{wa * a.w + wb * b.w, wa * a.x + wb * b.x,
                    wa * a.y + wb * b.y, wa * a.z + wb * b.z}
      .normalized();
}

}  // namespace dadu::linalg
