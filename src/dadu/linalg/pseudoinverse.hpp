// Moore-Penrose pseudoinverse built on the Jacobi SVD.
//
// This is the J^+ of the paper's pseudoinverse baseline: delta_theta =
// J^+ delta_X (Eq. 5 realised through SVD).  The damped variant
// implements the Levenberg-style regularisation used by DLS solvers,
// where 1/sigma is replaced by sigma / (sigma^2 + lambda^2) to stay
// bounded near singular configurations.
#pragma once

#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/svd.hpp"
#include "dadu/linalg/vecx.hpp"

namespace dadu::linalg {

/// A^+ with singular values below `tol` treated as zero (tol <= 0
/// selects the standard relative machine tolerance).
MatX pseudoinverse(const MatX& a, double tol = 0.0);

/// Damped pseudoinverse: V diag(sigma_i / (sigma_i^2 + lambda^2)) U^T.
MatX dampedPseudoinverse(const MatX& a, double lambda);

/// x = A^+ b without materialising A^+ (applies U^T, scales, applies V).
VecX pseudoinverseSolve(const Svd& svd, const VecX& b, double tol = 0.0);

/// x = V diag(s/(s^2+l^2)) U^T b for an existing factorisation.
VecX dampedSolve(const Svd& svd, const VecX& b, double lambda);

}  // namespace dadu::linalg
