#include "dadu/linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace dadu::linalg {

std::optional<Cholesky> Cholesky::factor(const MatX& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  MatX l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0)) return std::nullopt;  // also rejects NaN
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l));
}

VecX Cholesky::solve(const VecX& b) const {
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  // Forward: L y = b
  VecX y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Back: L^T x = y
  VecX x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

double Cholesky::determinant() const {
  double d = 1.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) d *= l_(i, i);
  return d * d;
}

std::optional<VecX> choleskySolve(const MatX& a, const VecX& b) {
  auto f = Cholesky::factor(a);
  if (!f) return std::nullopt;
  return f->solve(b);
}

}  // namespace dadu::linalg
