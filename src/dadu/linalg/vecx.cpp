#include "dadu/linalg/vecx.hpp"

#include <cassert>
#include <cmath>

namespace dadu::linalg {

VecX VecX::operator+(const VecX& o) const {
  assert(size() == o.size());
  VecX r(size());
  for (std::size_t i = 0; i < size(); ++i) r[i] = data_[i] + o[i];
  return r;
}

VecX VecX::operator-(const VecX& o) const {
  assert(size() == o.size());
  VecX r(size());
  for (std::size_t i = 0; i < size(); ++i) r[i] = data_[i] - o[i];
  return r;
}

VecX VecX::operator*(double s) const {
  VecX r(size());
  for (std::size_t i = 0; i < size(); ++i) r[i] = data_[i] * s;
  return r;
}

VecX VecX::operator/(double s) const { return (*this) * (1.0 / s); }

VecX VecX::operator-() const {
  VecX r(size());
  for (std::size_t i = 0; i < size(); ++i) r[i] = -data_[i];
  return r;
}

VecX& VecX::operator+=(const VecX& o) {
  assert(size() == o.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += o[i];
  return *this;
}

VecX& VecX::operator-=(const VecX& o) {
  assert(size() == o.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= o[i];
  return *this;
}

VecX& VecX::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double VecX::dot(const VecX& o) const {
  assert(size() == o.size());
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += data_[i] * o[i];
  return s;
}

double VecX::norm() const { return std::sqrt(squaredNorm()); }

double VecX::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

void VecX::setZero() {
  for (double& v : data_) v = 0.0;
}

VecX operator*(double s, const VecX& v) { return v * s; }

void axpy(double a, const VecX& x, VecX& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void axpyInto(double a, const VecX& x, const VecX& y, VecX& out) {
  assert(x.size() == y.size() && out.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = y[i] + a * x[i];
}

std::ostream& operator<<(std::ostream& os, const VecX& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << v[i];
    if (i + 1 < v.size()) os << ", ";
  }
  return os << ']';
}

}  // namespace dadu::linalg
