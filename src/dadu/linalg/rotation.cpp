#include "dadu/linalg/rotation.hpp"

#include <algorithm>
#include <cmath>

namespace dadu::linalg {

Mat3 axisAngle(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  if (u.squaredNorm() == 0.0) return Mat3::identity();
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double t = 1.0 - c;
  Mat3 r;
  r(0, 0) = c + u.x * u.x * t;
  r(0, 1) = u.x * u.y * t - u.z * s;
  r(0, 2) = u.x * u.z * t + u.y * s;
  r(1, 0) = u.y * u.x * t + u.z * s;
  r(1, 1) = c + u.y * u.y * t;
  r(1, 2) = u.y * u.z * t - u.x * s;
  r(2, 0) = u.z * u.x * t - u.y * s;
  r(2, 1) = u.z * u.y * t + u.x * s;
  r(2, 2) = c + u.z * u.z * t;
  return r;
}

Mat3 rpy(double roll, double pitch, double yaw) {
  return axisAngle(Vec3::unitZ(), yaw) * axisAngle(Vec3::unitY(), pitch) *
         axisAngle(Vec3::unitX(), roll);
}

double orthonormalityError(const Mat3& r) {
  const Mat3 d = r * r.transposed() - Mat3::identity();
  return d.frobeniusNorm();
}

bool isRotation(const Mat3& r, double tol) {
  return orthonormalityError(r) <= tol && std::abs(r.determinant() - 1.0) <= tol;
}

double rotationAngleBetween(const Mat3& a, const Mat3& b) {
  const Mat3 rel = a.transposed() * b;
  // trace(R) = 1 + 2 cos(angle); clamp for round-off.
  const double c = std::clamp((rel.trace() - 1.0) / 2.0, -1.0, 1.0);
  return std::acos(c);
}

}  // namespace dadu::linalg
