#include "dadu/linalg/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dadu::linalg {

std::int64_t FixedFormat::fromDouble(double v) const {
  return static_cast<std::int64_t>(
      std::llround(v * static_cast<double>(one())));
}

double FixedFormat::toDouble(std::int64_t raw) const {
  return static_cast<double>(raw) / static_cast<double>(one());
}

std::int64_t FixedFormat::mul(std::int64_t a, std::int64_t b) const {
  // 128-bit intermediate = the full-width hardware multiplier result.
  // (__extension__ silences -Wpedantic: __int128 is a GCC/Clang
  // extension, which this project's supported toolchains all provide.)
  __extension__ using Wide = __int128;
  const Wide wide = static_cast<Wide>(a) * static_cast<Wide>(b);
  // Round to nearest: add half an LSB before the arithmetic shift.
  const Wide half = Wide{1} << (frac_bits - 1);
  return static_cast<std::int64_t>((wide + half) >> frac_bits);
}

double FixedFormat::resolution() const {
  return 1.0 / static_cast<double>(one());
}

FixedSinCos cordicSinCosFixed(const FixedFormat& fmt, double angle,
                              int iterations) {
  if (iterations <= 0) iterations = fmt.frac_bits;
  iterations = std::clamp(iterations, 1, 60);

  // Argument reduction to [-pi/2, pi/2] (CORDIC's convergence region),
  // tracking the sign flip for the other half of the circle.  The
  // reduction itself is what a hardware block's range reducer does;
  // performing it in double here only sets the starting raw angle.
  constexpr double kPi = std::numbers::pi;
  double reduced = std::remainder(angle, 2.0 * kPi);
  bool flip = false;
  if (reduced > kPi / 2.0) {
    reduced = kPi - reduced;
    flip = true;
  } else if (reduced < -kPi / 2.0) {
    reduced = -kPi - reduced;
    flip = true;
  }

  // Gain-compensated start vector: x = 1/K, y = 0 with
  // K = prod_i sqrt(1 + 2^-2i).
  double gain = 1.0;
  for (int i = 0; i < iterations; ++i)
    gain *= std::sqrt(1.0 + std::ldexp(1.0, -2 * i));

  std::int64_t x = fmt.fromDouble(1.0 / gain);
  std::int64_t y = 0;
  std::int64_t z = fmt.fromDouble(reduced);

  for (int i = 0; i < iterations; ++i) {
    const std::int64_t atan_i = fmt.fromDouble(std::atan(std::ldexp(1.0, -i)));
    const std::int64_t dx = y >> i;
    const std::int64_t dy = x >> i;
    if (z >= 0) {
      x -= dx;
      y += dy;
      z -= atan_i;
    } else {
      x += dx;
      y -= dy;
      z += atan_i;
    }
  }

  if (flip) x = -x;
  return {y, x};
}

void cordicSinCos(const FixedFormat& fmt, double angle, double& sin_out,
                  double& cos_out, int iterations) {
  const FixedSinCos sc = cordicSinCosFixed(fmt, angle, iterations);
  sin_out = fmt.toDouble(sc.sin_raw);
  cos_out = fmt.toDouble(sc.cos_raw);
}

}  // namespace dadu::linalg
