// Unit quaternions for orientation representation and interpolation.
//
// Pose targets arrive from motion planners as quaternions far more
// often than as rotation matrices; this provides the conversions and
// the slerp used to build orientation trajectories for the pose-IK
// solvers (solvers themselves keep working on Mat3 internally, where
// the Jacobian lives).
#pragma once

#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/vec.hpp"

namespace dadu::linalg {

struct Quaternion {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  static Quaternion identity() { return {}; }
  /// Unit quaternion for a rotation of `angle` about `axis`
  /// (normalised internally; zero axis -> identity).
  static Quaternion fromAxisAngle(const Vec3& axis, double angle);
  /// From an orthonormal rotation matrix (Shepperd's method; stable in
  /// all trace regimes).
  static Quaternion fromMatrix(const Mat3& r);

  Mat3 toMatrix() const;

  double norm() const;
  Quaternion normalized() const;
  Quaternion conjugate() const { return {w, -x, -y, -z}; }

  /// Hamilton product: (*this) then... i.e. composed rotation
  /// q1 * q2 applies q2 first, then q1 (matching matrix convention
  /// toMatrix(q1*q2) == toMatrix(q1) * toMatrix(q2)).
  Quaternion operator*(const Quaternion& o) const;

  /// Rotate a vector.
  Vec3 rotate(const Vec3& v) const;

  /// Geodesic angle to another unit quaternion (handles double cover).
  double angleTo(const Quaternion& o) const;

  bool operator==(const Quaternion&) const = default;
};

/// Spherical linear interpolation between unit quaternions, shortest
/// arc; t in [0, 1].
Quaternion slerp(const Quaternion& a, const Quaternion& b, double t);

}  // namespace dadu::linalg
