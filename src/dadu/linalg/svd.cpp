#include "dadu/linalg/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace dadu::linalg {
namespace {

// One-sided Jacobi on a tall (m >= n) matrix: rotate column pairs of W
// until all pairs are orthogonal, accumulating the rotations into V.
// Then W = U * diag(s) with s_j = ||w_j||.
struct JacobiResult {
  MatX u;
  VecX s;
  MatX v;
  int sweeps = 0;
};

JacobiResult jacobiTall(const MatX& a, int max_sweeps, double tol) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  assert(m >= n);

  MatX w = a;                 // working copy, columns get orthogonalised
  MatX v = MatX::identity(n); // accumulated right rotations

  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Column dot products.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq)) continue;
        rotated = true;

        // Classic Jacobi rotation zeroing the (p,q) off-diagonal of
        // W^T W.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Extract singular values and left vectors.
  VecX s(n);
  MatX u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    s[j] = norm;
    if (norm > 0.0) {
      const double inv = 1.0 / norm;
      for (std::size_t i = 0; i < m; ++i) u(i, j) = w(i, j) * inv;
    } else {
      // Null column: leave u column zero; rank() excludes it.  Keeping
      // a deterministic (if non-orthonormal) basis here is fine for
      // the pseudoinverse, which multiplies the column by 1/s = 0.
      for (std::size_t i = 0; i < m; ++i) u(i, j) = 0.0;
    }
  }

  // Sort descending, permuting u, s, v consistently.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });
  MatX us(m, n), vs(n, n);
  VecX ss(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    ss[j] = s[src];
    for (std::size_t i = 0; i < m; ++i) us(i, j) = u(i, src);
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = v(i, src);
  }
  return {std::move(us), std::move(ss), std::move(vs), sweep};
}

}  // namespace

MatX Svd::reconstruct() const {
  const std::size_t m = u.rows();
  const std::size_t n = v.rows();
  const std::size_t r = s.size();
  MatX a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < r; ++k) acc += u(i, k) * s[k] * v(j, k);
      a(i, j) = acc;
    }
  return a;
}

double Svd::conditionNumber(double tol) const {
  if (s.size() == 0) return std::numeric_limits<double>::infinity();
  const std::size_t r = rank(tol);
  if (r < s.size() || r == 0) return std::numeric_limits<double>::infinity();
  return s[0] / s[s.size() - 1];
}

std::size_t Svd::rank(double tol) const {
  if (s.size() == 0) return 0;
  if (tol <= 0.0) {
    const double dim = static_cast<double>(std::max(u.rows(), v.rows()));
    tol = dim * std::numeric_limits<double>::epsilon() * s[0];
  }
  std::size_t r = 0;
  while (r < s.size() && s[r] > tol) ++r;
  return r;
}

Svd svdJacobi(const MatX& a, int max_sweeps, double tol) {
  assert(!a.empty());
  if (a.rows() >= a.cols()) {
    auto [u, s, v, sweeps] = jacobiTall(a, max_sweeps, tol);
    return {std::move(u), std::move(s), std::move(v), sweeps};
  }
  // Wide matrix (the 3 x N Jacobian case): factor the transpose and
  // swap the roles of U and V.
  auto [u, s, v, sweeps] = jacobiTall(a.transposed(), max_sweeps, tol);
  return {std::move(v), std::move(s), std::move(u), sweeps};
}

long long svdFlopsPerSweep(std::size_t m, std::size_t n) {
  // Work on the tall orientation.
  if (m < n) std::swap(m, n);
  // Per column pair: 6m mul-adds for the three dot products, 6m for the
  // column rotation, plus 6n for the V rotation; n(n-1)/2 pairs.
  const long long pairs = static_cast<long long>(n) * (n - 1) / 2;
  return pairs * (6LL * m + 6LL * m + 6LL * n);
}

}  // namespace dadu::linalg
