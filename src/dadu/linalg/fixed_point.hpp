// Runtime-parameterised Qm.n fixed-point arithmetic and a fixed-point
// CORDIC sine/cosine — the arithmetic a lean ASIC datapath (like
// IKAcc's FKU) would actually synthesise instead of floating point.
//
// Values are stored as int64_t with `frac_bits` fractional bits; the
// format is a runtime parameter so the word-length ablation can sweep
// it without templates.  Multiplication uses a 128-bit intermediate
// with round-to-nearest, the behaviour of a full-width hardware
// multiplier followed by a rounding shift.
#pragma once

#include <cstdint>

namespace dadu::linalg {

/// A fixed-point format: int64 raw values with 2^-frac_bits resolution.
struct FixedFormat {
  int frac_bits = 16;

  std::int64_t fromDouble(double v) const;
  double toDouble(std::int64_t raw) const;

  /// Raw multiply with rounding: (a * b) >> frac_bits.
  std::int64_t mul(std::int64_t a, std::int64_t b) const;

  /// Resolution (value of one LSB).
  double resolution() const;

  std::int64_t one() const { return std::int64_t{1} << frac_bits; }
};

/// CORDIC rotation-mode sine/cosine evaluated entirely in the given
/// fixed format (shift-add iterations, fixed-point arctangent table,
/// pre-scaled gain).  `iterations` <= 62; accuracy is ~2^-iterations
/// bounded below by the format's resolution.  Angle in radians, any
/// magnitude (argument reduction included).
struct FixedSinCos {
  std::int64_t sin_raw;
  std::int64_t cos_raw;
};
FixedSinCos cordicSinCosFixed(const FixedFormat& fmt, double angle,
                              int iterations = 0 /* 0 = frac_bits */);

/// Convenience: CORDIC sin/cos converted back to double (for tests and
/// accuracy studies).
void cordicSinCos(const FixedFormat& fmt, double angle, double& sin_out,
                  double& cos_out, int iterations = 0);

}  // namespace dadu::linalg
