// Umbrella header: the full public API of the Dadu library.
//
//   #include <dadu/dadu.hpp>
//
//   auto chain  = dadu::kin::makeSerpentine(100);
//   dadu::IkEngine engine(chain, dadu::Backend::kIkAcc);
//   auto result = engine.solve({0.8, 0.3, 0.5});
//
// Reproduction of: Lian et al., "Dadu: Accelerating Inverse Kinematics
// for High-DOF Robots", DAC 2017.
#pragma once

// Linear algebra substrate.
#include "dadu/linalg/cholesky.hpp"
#include "dadu/linalg/fixed_point.hpp"
#include "dadu/linalg/lu.hpp"
#include "dadu/linalg/mat3.hpp"
#include "dadu/linalg/mat4.hpp"
#include "dadu/linalg/mat34_batch.hpp"
#include "dadu/linalg/matx.hpp"
#include "dadu/linalg/pseudoinverse.hpp"
#include "dadu/linalg/quaternion.hpp"
#include "dadu/linalg/rotation.hpp"
#include "dadu/linalg/svd.hpp"
#include "dadu/linalg/vec.hpp"
#include "dadu/linalg/vecx.hpp"

// Kinematics substrate.
#include "dadu/kinematics/chain.hpp"
#include "dadu/kinematics/chain_utils.hpp"
#include "dadu/kinematics/dh.hpp"
#include "dadu/kinematics/forward.hpp"
#include "dadu/kinematics/forward_batch.hpp"
#include "dadu/kinematics/forward_f32.hpp"
#include "dadu/kinematics/forward_fixed.hpp"
#include "dadu/kinematics/jacobian.hpp"
#include "dadu/kinematics/jacobian_full.hpp"
#include "dadu/kinematics/metrics.hpp"
#include "dadu/kinematics/joint.hpp"
#include "dadu/kinematics/presets.hpp"
#include "dadu/kinematics/robot_io.hpp"
#include "dadu/kinematics/tree.hpp"
#include "dadu/kinematics/analytic.hpp"
#include "dadu/kinematics/workspace.hpp"

// Geometry substrate (collision checking).
#include "dadu/geometry/collision_aware_solver.hpp"
#include "dadu/geometry/distance.hpp"
#include "dadu/geometry/primitives.hpp"
#include "dadu/geometry/robot_geometry.hpp"

// Solvers (the paper's algorithm and every baseline).
#include "dadu/solvers/ccd.hpp"
#include "dadu/solvers/dls.hpp"
#include "dadu/solvers/dls_weighted.hpp"
#include "dadu/solvers/factory.hpp"
#include "dadu/solvers/ik_solver.hpp"
#include "dadu/solvers/jt_eq8.hpp"
#include "dadu/solvers/jt_fixed_alpha.hpp"
#include "dadu/solvers/jt_momentum.hpp"
#include "dadu/solvers/jt_serial.hpp"
#include "dadu/solvers/pinv_svd.hpp"
#include "dadu/solvers/pose_solvers.hpp"
#include "dadu/solvers/quick_ik.hpp"
#include "dadu/solvers/quick_ik_f32.hpp"
#include "dadu/solvers/quick_ik_adaptive.hpp"
#include "dadu/solvers/quick_ik_tree.hpp"
#include "dadu/solvers/rmrc.hpp"
#include "dadu/solvers/sdls.hpp"
#include "dadu/solvers/types.hpp"

// IKAcc accelerator simulator.
#include "dadu/ikacc/accelerator.hpp"
#include "dadu/ikacc/config.hpp"
#include "dadu/ikacc/design_space.hpp"
#include "dadu/ikacc/stats.hpp"
#include "dadu/ikacc/trace.hpp"
#include "dadu/ikacc/tree_accelerator.hpp"
#include "dadu/ikacc/pose_accelerator.hpp"
#include "dadu/ikacc/throughput.hpp"

// Platform models, workloads, reporting.
#include "dadu/platform/cpu_model.hpp"
#include "dadu/platform/gpu_model.hpp"
#include "dadu/platform/timer.hpp"
#include "dadu/workload/rng.hpp"
#include "dadu/workload/targets.hpp"
#include "dadu/workload/obstacles.hpp"
#include "dadu/workload/trajectory.hpp"

// Reporting utilities.
#include "dadu/report/ascii_plot.hpp"
#include "dadu/report/csv.hpp"
#include "dadu/report/table.hpp"

// Meta-solvers.
#include "dadu/solvers/restart.hpp"
#include "dadu/solvers/nullspace.hpp"

// Observability: lock-free counters, latency histograms, trace sinks,
// and the Prometheus / JSON / text exporters.
#include "dadu/obs/export.hpp"
#include "dadu/obs/histogram.hpp"
#include "dadu/obs/sharded_counters.hpp"
#include "dadu/obs/sink.hpp"

// Asynchronous serving layer.
#include "dadu/service/ik_service.hpp"
#include "dadu/service/queue.hpp"
#include "dadu/service/request.hpp"
#include "dadu/service/seed_cache.hpp"
#include "dadu/service/service_stats.hpp"

// Multi-robot spec registry and per-spec routing.
#include "dadu/registry/robot_spec_registry.hpp"
#include "dadu/registry/spec_router.hpp"

// TCP serving front-end: epoll event loop, binary wire protocol,
// non-blocking server and blocking client.
#include "dadu/net/buffer.hpp"
#include "dadu/net/event_loop.hpp"
#include "dadu/net/ik_client.hpp"
#include "dadu/net/ik_server.hpp"
#include "dadu/net/net_stats.hpp"
#include "dadu/net/wire.hpp"

// Top-level engine.
#include "dadu/core/batch_runner.hpp"
#include "dadu/core/engine.hpp"
#include "dadu/core/trajectory_solver.hpp"
#include "dadu/core/retiming.hpp"

// Control-loop co-simulation.
#include "dadu/simulation/control_loop.hpp"

// Motion planning substrate.
#include "dadu/planning/rrt.hpp"
